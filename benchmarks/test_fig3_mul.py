"""F3: Figure 3 -- the circuit for o8_MUL at l=4.

The figure shows the shift-and-add ladder: four o7_ADD_controlled boxes
interleaved with gate-free double_TF label rotations, the product copy,
and the fully mirrored (starred) uncomputation.
"""

from repro.core.gates import BoxCall, Comment
from repro.algorithms.tf.main import build_part
from conftest import report


def test_figure3_structure(benchmark):
    bc = benchmark(build_part, "mul", 4, 3, 2, "orthodox")
    o8 = bc.namespace["o8"].circuit
    o7_calls = [
        g for g in o8.gates if isinstance(g, BoxCall) and g.name == "o7"
    ]
    forward = [c for c in o7_calls if not c.inverted]
    mirrored = [c for c in o7_calls if c.inverted]
    assert len(forward) == 4       # one controlled add per bit of y
    assert len(mirrored) == 4      # the ladder mirror
    # double_TF appears as comment-only regions with permuted labels,
    # four in the forward ladder and four starred ones in the mirror
    # (the paper's "EXIT: double_TF*" regions).
    enters = [
        g for g in o8.gates
        if isinstance(g, Comment) and g.text == "ENTER: double_TF"
    ]
    assert sum(not g.inverted for g in enters) == 4
    assert sum(g.inverted for g in enters) == 4
    report(
        "F3 o8_MUL circuit (Figure 3)",
        [
            ("o7_ADD_controlled boxes", "4 fwd + 4 mirrored",
             f"{len(forward)} fwd + {len(mirrored)} mirrored"),
            ("double_TF", "gate-free label rotation", "comment-only"),
        ],
    )


def test_double_tf_is_gate_free(benchmark):
    """double_TF must emit no gates at all -- only relabeling."""
    from repro import Circ
    from repro.arith import rotate_left_tf
    from repro.datatypes import QIntTF

    def run():
        qc = Circ()
        reg = QIntTF([qc.qinit_qubit(False) for _ in range(8)])
        before = len(qc.gates)
        rotate_left_tf(qc, reg)
        return len(qc.gates) - before

    assert benchmark(run) == 0


def test_mul_is_correct(benchmark):
    from repro.algorithms.tf.simulate import check_mul

    assert benchmark(check_mul, 4, 10)
