"""Tests for the Boolean Formula / Hex algorithm."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lifting import classical_to_reversible, unpack
from repro.sim import run_classical_generic, run_generic
from repro.algorithms.bf import (
    blue_wins,
    count_winning_assignments,
    hex_oracle_gatecount,
    make_hex_winner_template,
    make_nand_formula_template,
    nand_formula_value,
    neighbors,
    random_final_position,
    winning_move_search,
)


class TestFloodFill:
    def test_full_blue_board_wins(self):
        assert blue_wins([True] * 9, 3, 3)

    def test_empty_board_loses(self):
        assert not blue_wins([False] * 9, 3, 3)

    def test_single_row_path(self):
        board = [True, True, True] + [False] * 6
        assert blue_wins(board, 3, 3)

    def test_blocked_column(self):
        # right column empty -> no connection
        board = [True, True, False] * 3
        assert not blue_wins(board, 3, 3)

    def test_diagonal_hex_adjacency(self):
        # hex adjacency includes (r-1, c+1): a staircase connects
        board = [
            False, False, True,
            False, True, False,
            True, False, False,
        ]
        assert blue_wins(board, 3, 3)

    def test_neighbor_count_bounds(self):
        for r in range(3):
            for c in range(3):
                count = len(neighbors(r, c, 3, 3))
                assert 2 <= count <= 6


class TestLiftedOracle:
    @given(st.lists(st.booleans(), min_size=9, max_size=9))
    @settings(max_examples=15, deadline=None)
    def test_oracle_matches_flood_fill(self, board):
        template = make_hex_winner_template(3, 3)
        # classical callability of the template itself
        assert template(board) == blue_wins(board, 3, 3)
        rev = classical_to_reversible(unpack(template))

        def circ(qc, cells, target):
            return rev(qc, cells, target)

        cells, target = run_classical_generic(circ, board, False)
        assert target == blue_wins(board, 3, 3)
        assert cells == board

    def test_gatecount_grows_with_board(self):
        small = hex_oracle_gatecount(2, 2)
        large = hex_oracle_gatecount(3, 3)
        assert large > 2 * small

    def test_share_false_larger_than_share_true(self):
        assert hex_oracle_gatecount(3, 3, share=False) >= \
            hex_oracle_gatecount(3, 3, share=True)


class TestNandFormula:
    @given(st.lists(st.booleans(), min_size=8, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_lifted_matches_classical(self, leaves):
        template = make_nand_formula_template(3)
        rev = classical_to_reversible(unpack(template))

        def circ(qc, ls, t):
            return rev(qc, ls, t)

        ls, value = run_classical_generic(circ, leaves, False)
        assert value == nand_formula_value(leaves)

    def test_nand_tree_known_values(self):
        assert nand_formula_value([False, False]) is True
        assert nand_formula_value([True, True]) is False
        assert nand_formula_value([True, True, True, True]) is True


class TestWinningMoveSearch:
    def test_counts_ground_truth(self):
        partial = [True, None, False, False, None, True]
        assert count_winning_assignments(2, 3, partial) == 1

    def test_grover_finds_the_winning_move(self):
        partial = [True, None, False, False, None, True]

        def circ(qc):
            reg, _ = winning_move_search(qc, 2, 3, partial, iterations=1)
            return reg

        hits = 0
        for seed in range(20):
            out = run_generic(circ, seed=seed)
            board = list(partial)
            board[1], board[4] = out[0], out[1]
            hits += blue_wins(board, 2, 3)
        assert hits >= 17  # near-deterministic for M=1, N=4

    def test_no_empty_cells_rejected(self):
        with pytest.raises(ValueError):
            from repro import build

            build(lambda qc: winning_move_search(qc, 2, 2,
                                                 [True, False, True, False]))

    def test_final_positions_decided(self):
        """In hex, someone always wins a full board: blue wins iff red
        (the complement) does not connect top-bottom -- spot check that
        random full boards are consistently decided by flood fill."""
        rng = random.Random(1)
        for seed in range(10):
            board = random_final_position(3, 3, seed)
            blue = blue_wins(board, 3, 3)
            # red plays the transposed board with inverted stones
            red_board = [False] * 9
            for r in range(3):
                for c in range(3):
                    red_board[c * 3 + r] = not board[r * 3 + c]
            red = blue_wins(red_board, 3, 3)
            assert blue != red
