"""Batched statevector engine: equivalence, seeding, seam, and knobs.

The batched engine (PR 9) advances ``B`` lockstep states per kernel
dispatch behind the :mod:`repro.sim.xp` array-module seam.  This suite
pins it three ways:

* **bit-identity to the scalar engine** -- every batch member's
  amplitudes, classical bits, and measurement outcomes are exactly what
  a ``batch=1`` run of that member produces, across all kernel classes,
  batch sizes {1, 3, 8, 64}, and ragged final batches;
* **equivalence to :class:`~repro.sim.state.LegacyStateVector`** -- the
  original moveaxis + matmul engine, fed the same scripted measurement
  randomness, agrees member by member up to global phase;
* **stream identity of seeded sampling** -- backend counts are
  bit-identical at every batch size (including the pre-batching PR 3
  recorded counts), through ``Program.run(batch=)`` and the service's
  run path alike.
"""

from __future__ import annotations

import random
import sys
import types

import numpy as np
import pytest

from repro import Program, build, get_backend, qubit
from repro.backends.base import BackendError, outcome_key
from repro.core.gates import Control, Discard, Measure, NamedGate
from repro.core.errors import SimulationError
from repro.core.wires import QUANTUM
from repro.obs import core as obs_core
from repro.sim import xp as sim_xp
from repro.sim.kernels import DENSE, DIAGONAL, PERMUTE, PHASE, gate_kernel
from repro.sim.matrices import gate_matrix_cached
from repro.sim.state import LegacyStateVector, StateVector, simulate
from strategies import (
    PARAMETRIZED as _PARAMETRIZED,
    VOCABULARY as _VOCABULARY,
    random_gates,
    superpose as _superpose,
)

BATCH_SIZES = (1, 3, 8, 64)


class _ScriptedRng:
    """Feeds a legacy engine the exact per-member measurement draws."""

    def __init__(self, values):
        self._values = list(values)

    def random(self):
        return self._values.pop(0)


def _stochastic_events(gates):
    return sum(1 for g in gates if isinstance(g, (Measure, Discard)))


def _run_batched(gates, n_qubits, batch, draws=None):
    sim = StateVector(rng=np.random.default_rng(0), batch=batch)
    for w in range(n_qubits):
        sim.add_qubit(w, False)
    if draws is not None:
        sim.preload_randoms(draws)
    for gate in gates:
        sim.execute(gate)
    return sim

def _run_scalar_member(gates, n_qubits, row=None):
    sim = StateVector(rng=np.random.default_rng(0))
    for w in range(n_qubits):
        sim.add_qubit(w, False)
    if row is not None:
        sim.preload_randoms(row.reshape(1, -1))
    for gate in gates:
        sim.execute(gate)
    return sim


def _member_state(sim, i):
    if sim.batch == 1:
        return np.asarray(sim.state).ravel()
    return np.asarray(sim.state[i]).ravel()


def _member_bits(sim, i):
    out = {}
    for wire, value in sim.bits.items():
        out[wire] = bool(value[i]) if isinstance(value, np.ndarray) else bool(value)
    return out


def _assert_member_matches_scalar(batched, i, scalar):
    """Member *i* of the batched run matches the scalar run: identical
    axes, bit-identical classical bits and measurement outcomes, and
    amplitudes equal to machine rounding (numpy's SIMD loops may differ
    by one ULP between a strided batch column and a lone element, so
    exact float equality is not demanded -- 1e-12 is ~10,000x tighter
    than the legacy-equivalence tolerance)."""
    assert batched.axes == scalar.axes
    assert _member_bits(batched, i) == _member_bits(scalar, 0)
    np.testing.assert_allclose(
        _member_state(batched, i), _member_state(scalar, 0),
        rtol=0, atol=1e-12,
    )


def _assert_member_matches_legacy(batched, i, legacy):
    """Member *i* agrees with a legacy engine run up to global phase."""
    assert batched.axes == legacy.axes
    assert _member_bits(batched, i) == {
        w: bool(v) for w, v in legacy.bits.items()
    }
    a = _member_state(batched, i)
    b = np.asarray(legacy.state).ravel()
    assert a.shape == b.shape
    anchor = int(np.argmax(np.abs(b)))
    assert abs(b[anchor]) > 1e-9
    phase = a[anchor] / b[anchor]
    assert abs(abs(phase) - 1.0) < 1e-9
    np.testing.assert_allclose(a, phase * b, atol=1e-9)


def _run_legacy_member(gates, n_qubits, row):
    sim = LegacyStateVector(rng=_ScriptedRng(row))
    for w in range(n_qubits):
        sim.add_qubit(w, False)
    for gate in gates:
        sim.execute(gate)
    return sim


#: One representative circuit per kernel class, plus controlled forms.
_KERNEL_CLASS_CIRCUITS = {
    "diagonal": [
        NamedGate("T", (0,)),
        NamedGate("Rz", (1,), param=0.7),
        NamedGate("exp(-i%ZZ)", (2, 3), param=0.9),
        NamedGate("S", (2,), controls=(Control(0, True),)),
    ],
    "permute": [
        NamedGate("X", (0,)),
        NamedGate("Y", (1,)),
        NamedGate("swap", (2, 3)),
        NamedGate("not", (3,), controls=(Control(1, False),)),
    ],
    "dense": [
        NamedGate("H", (0,)),
        NamedGate("W", (1, 2)),
        NamedGate("Rx", (3,), param=1.1),
        NamedGate("V", (2,), controls=(Control(0, True),)),
    ],
    "phase": [
        NamedGate("phase", (), param=0.25),
        NamedGate("phase", (), param=-0.4, controls=(Control(1, True),)),
    ],
}


class TestKernelClassesAcrossBatchSizes:
    """Every kernel class x every batch size: bit-identical to scalar."""

    @pytest.mark.parametrize("batch", BATCH_SIZES)
    @pytest.mark.parametrize("kind", sorted(_KERNEL_CLASS_CIRCUITS))
    def test_batched_members_match_scalar_bitwise(self, kind, batch):
        gates = _superpose(4) + _KERNEL_CLASS_CIRCUITS[kind]
        batched = _run_batched(gates, 4, batch)
        scalar = _run_scalar_member(gates, 4)
        for i in range(batch):
            _assert_member_matches_scalar(batched, i, scalar)

    @pytest.mark.parametrize("kind", sorted(_KERNEL_CLASS_CIRCUITS))
    def test_batched_members_match_legacy(self, kind):
        gates = _superpose(4) + _KERNEL_CLASS_CIRCUITS[kind]
        batched = _run_batched(gates, 4, 3)
        legacy = _run_legacy_member(gates, 4, [])
        for i in range(3):
            _assert_member_matches_legacy(batched, i, legacy)

    def test_kernel_class_circuits_cover_all_kinds(self):
        seen = set()
        for gates in _KERNEL_CLASS_CIRCUITS.values():
            for g in gates:
                seen.add(gate_kernel(g.name, g.param, g.inverted).kind)
        assert seen == {DIAGONAL, PERMUTE, DENSE, PHASE}


class TestFullVocabularyBatched:
    @pytest.mark.parametrize("name", _VOCABULARY)
    def test_vocabulary_gate_batched_matches_scalar_and_legacy(self, name):
        rnd = random.Random(hash(name) & 0xFFFF)
        param = _PARAMETRIZED[name](rnd) if name in _PARAMETRIZED else None
        arity = gate_matrix_cached(name, param, False).shape[0].bit_length() - 1
        n = max(arity + 2, 3)
        targets = tuple(range(arity))
        controls = (Control(arity, True), Control(arity + 1, False))
        gates = _superpose(n) + [
            NamedGate(name, targets, param=param),
            NamedGate(name, targets, controls=controls, param=param,
                      inverted=True),
        ]
        batched = _run_batched(gates, n, 3)
        scalar = _run_scalar_member(gates, n)
        legacy = _run_legacy_member(gates, n, [])
        for i in range(3):
            _assert_member_matches_scalar(batched, i, scalar)
            _assert_member_matches_legacy(batched, i, legacy)


class TestRandomizedStochasticCircuits:
    """Random circuits over the whole extended model -- measurement,
    Init/Term ancillas, classical wires, classically-controlled gates --
    run batched with shot-major scripted randomness and compared member
    by member against scalar and legacy replays of the same draws."""

    @pytest.mark.parametrize("trial", range(8))
    def test_random_circuit_members_match_scalar_and_legacy(self, trial):
        rnd = random.Random(4000 + trial)
        n = rnd.randint(4, 5)
        gates = random_gates(
            rnd, n, gate_p=0.60, ancilla_p=0.12, cinit_p=0.12,
            classical_control_p=0.4, measure_p=0.6,
        )
        events = _stochastic_events(gates)
        batch = BATCH_SIZES[trial % len(BATCH_SIZES)]
        draws = np.random.default_rng(99 + trial).random((batch, events))
        batched = _run_batched(gates, n, batch, draws if events else None)
        for i in range(batch):
            scalar = _run_scalar_member(
                gates, n, draws[i] if events else None
            )
            _assert_member_matches_scalar(batched, i, scalar)
            legacy = _run_legacy_member(gates, n, list(draws[i]))
            _assert_member_matches_legacy(batched, i, legacy)

    def test_members_diverge_under_measurement(self):
        gates = [NamedGate("H", (0,)), Measure(0)]
        draws = np.array([[0.01], [0.99], [0.01], [0.99]])
        batched = _run_batched(gates, 1, 4, draws)
        outcomes = [_member_bits(batched, i)[0] for i in range(4)]
        assert outcomes == [True, False, True, False]
        # Each member collapsed to its own branch and renormalized.
        for i in range(4):
            amp = _member_state(batched, i)
            assert amp.shape == (1,)
            assert abs(abs(amp[0]) - 1.0) < 1e-12


class TestSeededBackendSampling:
    """Stream identity: counts are bit-identical at every batch size."""

    @staticmethod
    def _stochastic_program():
        def stochastic(qc, a, b, c):
            qc.hadamard(a)
            qc.gate_T(b)
            qc.qnot(b, controls=a)
            qc.rotY(0.8, c)
            m = qc.measure(a)
            qc.qnot(c, controls=m)
            qc.hadamard(b)
            return m, b, c

        return build(stochastic, qubit, qubit, qubit)[0]

    #: Seeded counts recorded by PR 3's per-shot fork sampler (48 shots).
    #: The batched sampler must reproduce them bit-for-bit.
    PINNED_PR3_COUNTS = {
        0: {"000": 7, "001": 3, "010": 11, "011": 4,
            "100": 5, "101": 14, "110": 1, "111": 3},
        7: {"000": 12, "001": 1, "010": 6,
            "100": 1, "101": 14, "110": 4, "111": 10},
        123: {"000": 11, "010": 10, "011": 1,
              "100": 2, "101": 10, "110": 2, "111": 12},
    }

    def test_pinned_pr3_counts_at_every_batch_size(self):
        bc = self._stochastic_program()
        for seed, expected in self.PINNED_PR3_COUNTS.items():
            for batch in (*BATCH_SIZES, None):
                result = get_backend("statevector", batch=batch).run(
                    bc, shots=48, seed=seed
                )
                assert result.counts == expected, (seed, batch)

    def test_ragged_final_batch_preserves_stream_identity(self):
        # 13 shots at batch 8 -> chunks of 8 and 5; the rng stream must
        # be consumed exactly as 13 sequential shots would consume it.
        bc = self._stochastic_program()
        reference = get_backend("statevector", batch=1).run(
            bc, shots=13, seed=21
        )
        ragged = get_backend("statevector", batch=8).run(
            bc, shots=13, seed=21
        )
        assert ragged.counts == reference.counts
        assert ragged.metadata["batch"] == 8

    def test_program_run_batch_knob(self):
        def coin(qc, a, b):
            qc.hadamard(a)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            qc.hadamard(b)
            return m, b

        prog = Program.capture(coin, qubit, qubit)
        plain = prog.run(shots=32, seed=3)
        knobbed = prog.run(shots=32, seed=3, batch=16)
        assert knobbed.counts == plain.counts
        assert knobbed.metadata["batch"] == 16

    def test_invalid_batch_rejected(self):
        with pytest.raises(BackendError):
            get_backend("statevector", batch=0)

    def test_batch_occupancy_counters(self):
        bc = self._stochastic_program()
        with obs_core.capture() as rec:
            get_backend("statevector", batch=16).run(bc, shots=48, seed=0)
        assert rec.counters["sim.batch.forks"] == 3
        assert rec.counters["sim.batch.gates"] > 0
        occupancy = rec.histograms["sim.batch.occupancy"]
        assert occupancy.count == 3
        assert occupancy.total == 48


class TestSimulateBatchParameter:
    def test_simulate_batch_shapes_and_guards(self):
        def bell(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        bc, _ = build(bell, qubit, qubit)
        sim = simulate(bc, batch=5)
        assert sim.batch == 5
        assert sim.state.shape == (5, 2, 2)
        scalar = simulate(bc)
        for i in range(5):
            assert np.array_equal(
                np.asarray(sim.state[i]), np.asarray(scalar.state)
            )
        with pytest.raises(SimulationError):
            sim.basis_probabilities([0, 1])

    def test_broadcast_requires_batch_one(self):
        sim = StateVector(batch=2)
        with pytest.raises(SimulationError):
            sim.broadcast(4)
        with pytest.raises(SimulationError):
            StateVector(batch=0)

    def test_preloaded_randomness_exhaustion_raises(self):
        sim = StateVector(batch=2)
        sim.add_qubit(0, False)
        sim.execute(NamedGate("H", (0,)))
        sim.preload_randoms(np.zeros((2, 0)))
        with pytest.raises(SimulationError):
            sim.measure_qubit(0)


class TestServiceRunPath:
    def test_canonical_run_options_accepts_batch(self):
        from repro.service.jobs import canonical_run_options

        options = canonical_run_options(
            {"shots": 32, "seed": 5, "batch": 16}
        )
        assert options["batch"] == 16
        assert canonical_run_options({})["batch"] is None

    @pytest.mark.parametrize("bad", [0, -3, True, "16", 1.5])
    def test_canonical_run_options_rejects_bad_batch(self, bad):
        from repro.service.jobs import canonical_run_options
        from repro.service.registry import ServiceError

        with pytest.raises(ServiceError):
            canonical_run_options({"batch": bad})

    def test_service_run_payload_bit_identical_across_batch(self):
        from repro.service.workers import run_program_payload

        def stochastic(qc, a, b):
            qc.hadamard(a)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            qc.hadamard(b)
            return m, b

        prog = Program.capture(stochastic, qubit, qubit)
        plain = run_program_payload(prog, {"shots": 40, "seed": 11})
        batched = run_program_payload(
            prog, {"shots": 40, "seed": 11, "batch": 8}
        )
        assert batched["counts"] == plain["counts"]


class TestArrayModuleSeam:
    @pytest.fixture(autouse=True)
    def _restore_seam(self):
        yield
        sim_xp.reset()

    def test_numpy_passes_every_capability_probe(self):
        assert sim_xp.probe_capabilities(np) == frozenset(sim_xp.CAPABILITIES)

    def test_default_resolution_is_numpy(self):
        sim_xp.reset()
        active = sim_xp.active()
        assert active.name == "numpy"
        assert sim_xp.xp() is np
        arr = np.ones(3)
        assert sim_xp.to_host(arr) is arr

    def test_missing_module_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="not importable"):
            active = sim_xp.use("repro_definitely_missing_backend")
        assert active.name == "numpy"

    def test_incapable_module_falls_back_with_warning(self):
        fake = types.ModuleType("repro_fake_array_module")
        sys.modules["repro_fake_array_module"] = fake
        try:
            with pytest.warns(RuntimeWarning, match="capability probe"):
                active = sim_xp.use("repro_fake_array_module")
            assert active.name == "numpy"
        finally:
            del sys.modules["repro_fake_array_module"]

    def test_env_var_selects_module(self, monkeypatch):
        monkeypatch.setenv(sim_xp.ENV_VAR, "numpy")
        sim_xp.reset()
        assert sim_xp.active().name == "numpy"

    def test_engine_runs_unchanged_through_explicit_seam(self):
        sim_xp.use("numpy")
        gates = _superpose(3) + [Measure(0)]
        draws = np.random.default_rng(5).random((3, 1))
        batched = _run_batched(gates, 3, 3, draws)
        for i in range(3):
            scalar = _run_scalar_member(gates, 3, draws[i])
            _assert_member_matches_scalar(batched, i, scalar)


class TestOutcomeReadout:
    def test_forked_outcome_rows_match_per_shot_keys(self):
        # The batched readout builds outcome keys from stacked member
        # columns; spot-check against manually simulated members.
        def circ(qc, a, b):
            qc.hadamard(a)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            return m, b

        bc, _ = build(circ, qubit, qubit)
        result = get_backend("statevector", batch=64).run(
            bc, shots=64, seed=2
        )
        assert sum(result.counts.values()) == 64
        # Perfectly correlated circuit: only 00 and 11 are possible.
        assert set(result.counts) <= {outcome_key([False, False]),
                                      outcome_key([True, True])}
