"""Tests for the fluent Program pipeline API (repro.program).

One definition, every consumer: these tests pin the laziness/caching
contract, the parity of every Program method with its legacy free
function, the pipeline stages (transform/inverse/inline/controlled), and
the @subroutine/@main declarative decorators.
"""

from __future__ import annotations

import io

import pytest

from repro import (
    BINARY,
    TOFFOLI,
    Program,
    aggregate_gate_count,
    build,
    decompose_generic,
    main,
    qubit,
    run_generic,
    subroutine,
)
from repro.core.gates import BoxCall
from repro.output import format_bcircuit, format_gatecount, print_generic
from repro.output.gatecount import gatecount_generic
from repro.sim.state import simulate
from repro.transform import circuit_depth, reverse_bcircuit, total_gates
from repro.io import dumps


def mycirc(qc, a, b):
    qc.hadamard(a)
    qc.hadamard(b)
    qc.controlled_not(a, b)
    return a, b


def bell_fn(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return qc.measure((a, b))


class TestCaptureAndCaching:
    def test_lazy_until_first_consumer(self):
        calls = []

        def fn(qc, a):
            calls.append(1)
            qc.hadamard(a)
            return a

        prog = Program.capture(fn, qubit)
        assert calls == []  # nothing generated yet
        prog.count()
        prog.ascii()
        prog.depth()
        prog.run(shots=4, seed=0)
        assert calls == [1]  # generated exactly once, then cached

    def test_matches_build(self):
        prog = Program.capture(mycirc, qubit, qubit)
        bc, _ = build(mycirc, qubit, qubit)
        assert prog.bcircuit == bc

    def test_capture_of_program_is_idempotent(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert Program.capture(prog) is prog

    def test_from_bcircuit(self):
        bc, outs = build(mycirc, qubit, qubit)
        prog = Program.from_bcircuit(bc, outs, name="wrapped")
        assert prog.bcircuit is bc
        assert prog.outputs is outs

    def test_repr_shows_lifecycle(self):
        prog = Program.capture(mycirc, qubit, qubit, name="mycirc")
        assert "lazy" in repr(prog)
        prog.bcircuit
        assert "built" in repr(prog)


class TestConsumersMatchLegacyFunctions:
    def test_count(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.count() == gatecount_generic(mycirc, qubit, qubit)
        assert prog.total_gates() == total_gates(prog.count())

    def test_ascii_and_print(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.ascii() == format_bcircuit(prog.bcircuit)
        buffer = io.StringIO()
        returned = prog.print(file=buffer)
        assert buffer.getvalue().strip() == prog.ascii().strip()
        assert returned == prog.bcircuit

    def test_print_generic_shim_delegates(self, capsys):
        bc = print_generic(mycirc, qubit, qubit)
        out = capsys.readouterr().out
        assert out.strip() == format_bcircuit(bc).strip()

    def test_gatecount_report(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.gatecount() == format_gatecount(prog.bcircuit)

    def test_run_matches_run_generic(self):
        prog = Program.capture(bell_fn, qubit, qubit)
        fluent = prog.run(shots=256, seed=11)
        legacy = run_generic(bell_fn, qubit, qubit, shots=256, seed=11)
        assert fluent.counts == legacy.counts

    def test_depth_width_resources(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.depth() == circuit_depth(prog.bcircuit)
        assert prog.width() == prog.bcircuit.check()
        res = prog.resources()
        assert res["total_gates"] == prog.total_gates()

    def test_dumps_loads_qasm(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.dumps() == dumps(prog.bcircuit)
        assert Program.loads(prog.dumps()).bcircuit == prog.bcircuit
        assert prog.qasm().startswith("OPENQASM 2.0;")


class TestPipelineStages:
    def _three_controls(self):
        def fn(qc, a, b, c, d):
            qc.qnot(d, controls=(a, b, c))
            return a, b, c, d

        return Program.capture(fn, qubit, qubit, qubit, qubit)

    def test_transform_matches_decompose_generic(self):
        prog = self._three_controls()
        fused = prog.transform(TOFFOLI)
        legacy = decompose_generic(TOFFOLI, prog.bcircuit)
        assert fused.count() == aggregate_gate_count(legacy)

    def test_transform_binary_chain(self):
        prog = self._three_controls()
        fused = prog.transform(BINARY)
        legacy = decompose_generic(BINARY, prog.bcircuit)
        assert fused.count() == aggregate_gate_count(legacy)

    def test_transform_rejects_garbage(self):
        with pytest.raises(ValueError):
            self._three_controls().transform("clifford+t")

    def test_transform_does_not_mutate_parent(self):
        prog = self._three_controls()
        before = prog.count()
        prog.transform(BINARY).count()
        assert prog.count() == before

    def test_inverse(self):
        prog = Program.capture(mycirc, qubit, qubit)
        assert prog.inverse().bcircuit == reverse_bcircuit(prog.bcircuit)

    def test_inline_flattens_boxes(self):
        @subroutine
        def body(qc, a):
            qc.gate_T(a)
            return a

        def fn(qc, a):
            body(qc, a)
            body(qc, a)
            return a

        prog = Program.capture(fn, qubit)
        assert prog.bcircuit.namespace  # boxed
        flat = prog.inline()
        assert not flat.bcircuit.namespace
        assert flat.count() == prog.count()

    def test_controlled_gates_fire_only_when_control_set(self):
        def fn(qc, a):
            qc.qnot(a)
            return a

        prog = Program.capture(fn, qubit).controlled()
        bc = prog.bcircuit
        assert bc.circuit.in_arity == 2
        target = bc.circuit.inputs[0][0]
        control = bc.circuit.inputs[1][0]
        for ctl_value in (False, True):
            state = simulate(bc, {target: False, control: ctl_value})
            probs = state.basis_probabilities([target])
            assert probs[(int(ctl_value),)] == pytest.approx(1.0)

    def test_controlled_validates_and_reports_outputs(self):
        prog = Program.capture(mycirc, qubit, qubit).controlled(2)
        assert prog.width() == 4
        _, controls = prog.outputs
        assert len(controls) == 2
        with pytest.raises(ValueError):
            Program.capture(mycirc, qubit, qubit).controlled(0)

    def test_stage_names_compose(self):
        prog = Program.capture(mycirc, qubit, qubit, name="mycirc")
        derived = prog.transform(TOFFOLI).inverse()
        assert "mycirc" in derived.name
        assert "inverse" in derived.name


class TestDecorators:
    def test_subroutine_emits_boxcall(self):
        @subroutine
        def adder(qc, a, b):
            qc.qnot(b, controls=a)
            return a, b

        def fn(qc, a, b):
            adder(qc, a, b)
            adder(qc, a, b)
            return a, b

        bc, _ = build(fn, qubit, qubit)
        calls = [g for g in bc.circuit.gates if isinstance(g, BoxCall)]
        assert len(calls) == 2
        assert {c.name for c in calls} == {"adder"}
        assert list(bc.namespace) == ["adder"]

    def test_subroutine_custom_name(self):
        @subroutine(name="my_box")
        def f(qc, a):
            qc.hadamard(a)
            return a

        bc, _ = build(lambda qc, a: f(qc, a), qubit)
        assert list(bc.namespace) == ["my_box"]

    def test_main_decorator_yields_program(self):
        @main(qubit, qubit)
        def bell(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return qc.measure((a, b))

        assert isinstance(bell, Program)
        counts = bell.run(shots=128, seed=5).counts
        assert set(counts) <= {"00", "11"}

    def test_main_program_is_callable_inline(self):
        @main(qubit)
        def prep(qc, a):
            qc.hadamard(a)
            return a

        def outer(qc, a, b):
            prep(qc, a)
            prep(qc, b)
            return a, b

        bc, _ = build(outer, qubit, qubit)
        assert len(bc.circuit.gates) == 2  # inlined H gates

    def test_bcircuit_backed_program_not_callable(self):
        prog = Program.from_bcircuit(build(mycirc, qubit, qubit)[0])
        with pytest.raises(TypeError):
            prog(None)
