"""Unit tests for wires and the gate IR."""

import pytest

from repro.core.errors import IrreversibleError
from repro.core.gates import (
    BoxCall,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Init,
    Measure,
    NamedGate,
    Term,
    map_gate_wires,
    with_extra_controls,
)
from repro.core.wires import Bit, Qubit


class TestWires:
    def test_equality_by_id_and_type(self):
        assert Qubit(3) == Qubit(3)
        assert Qubit(3) != Qubit(4)
        assert Qubit(3) != Bit(3)

    def test_hashable(self):
        assert len({Qubit(1), Qubit(1), Bit(1)}) == 2

    def test_repr(self):
        assert repr(Qubit(7)) == "Qubit(7)"
        assert repr(Bit(0)) == "Bit(0)"

    def test_wire_types(self):
        assert Qubit(0).wire_type == "Q"
        assert Bit(0).wire_type == "C"


class TestGateInverses:
    def test_self_inverse_named_gates(self):
        for name in ("H", "X", "not", "Y", "Z", "swap", "W"):
            arity = 2 if name in ("swap", "W") else 1
            gate = NamedGate(name, tuple(range(arity)))
            assert gate.inverse() == gate

    def test_non_self_inverse_toggles_flag(self):
        gate = NamedGate("T", (0,))
        inv = gate.inverse()
        assert inv.inverted
        assert inv.inverse() == gate

    def test_rotation_negates_param(self):
        gate = NamedGate("exp(-i%Z)", (0,), param=0.5)
        inv = gate.inverse()
        assert inv.param == -0.5
        assert not inv.inverted

    def test_init_term_duality(self):
        assert Init(3, True).inverse() == Term(3, True)
        assert Term(3, False).inverse() == Init(3, False)
        assert CInit(2, True).inverse() == CTerm(2, True)

    def test_irreversible_gates(self):
        with pytest.raises(IrreversibleError):
            Measure(0).inverse()
        with pytest.raises(IrreversibleError):
            Discard(0).inverse()

    def test_cgate_inverse_is_uncompute(self):
        gate = CGate("and", 5, (1, 2))
        inv = gate.inverse()
        assert inv.uncompute
        assert inv.inverse() == gate

    def test_boxcall_inverse_swaps_endpoints(self):
        call = BoxCall("f", ((0, "Q"),), ((0, "Q"), (1, "Q")))
        inv = call.inverse()
        assert inv.inverted
        assert inv.in_wires == call.out_wires
        assert inv.out_wires == call.in_wires
        assert inv.inverse() == call


class TestWireAccounting:
    def test_named_gate_wires(self):
        gate = NamedGate("not", (0,), (Control(1), Control(2, False)))
        ids = {w for w, _ in gate.wires_in()}
        assert ids == {0, 1, 2}
        assert gate.wires_in() == gate.wires_out()

    def test_measure_changes_type(self):
        gate = Measure(4)
        assert gate.wires_in() == ((4, "Q"),)
        assert gate.wires_out() == ((4, "C"),)

    def test_init_has_no_inputs(self):
        assert Init(0).wires_in() == ()
        assert Init(0).wires_out() == ((0, "Q"),)

    def test_cgate_uncompute_consumes_target(self):
        gate = CGate("xor", 5, (1,), uncompute=True)
        assert (5, "C") in gate.wires_in()
        assert (5, "C") not in gate.wires_out()


class TestMapWires:
    def test_named(self):
        gate = NamedGate("not", (0,), (Control(1, False),))
        mapped = map_gate_wires(gate, lambda w: w + 10)
        assert mapped.targets == (10,)
        assert mapped.controls[0].wire == 11
        assert not mapped.controls[0].positive

    def test_boxcall(self):
        call = BoxCall("f", ((0, "Q"),), ((1, "Q"),), (Control(2),))
        mapped = map_gate_wires(call, lambda w: w * 2)
        assert mapped.in_wires == ((0, "Q"),)
        assert mapped.out_wires == ((2, "Q"),)
        assert mapped.controls[0].wire == 4

    def test_comment_labels(self):
        comment = Comment("hi", ((3, "Q", "x"),))
        mapped = map_gate_wires(comment, lambda w: w + 1)
        assert mapped.labels == ((4, "Q", "x"),)

    def test_all_kinds_round_trip(self):
        gates = [
            NamedGate("H", (0,)),
            Init(1),
            Term(1),
            Discard(2),
            CInit(3),
            CTerm(3),
            Measure(4),
            CGate("or", 5, (3,)),
            CNot(3, (Control(0),)),
            Comment("c", ((0, "Q", "a"),)),
            BoxCall("b", ((0, "Q"),), ((0, "Q"),)),
        ]
        for gate in gates:
            assert map_gate_wires(gate, lambda w: w) == gate


class TestExtraControls:
    def test_adds_to_named(self):
        gate = NamedGate("H", (0,))
        controlled = with_extra_controls(gate, (Control(1),))
        assert controlled.controls == (Control(1),)

    def test_skips_init_term(self):
        assert with_extra_controls(Init(0), (Control(1),)) == Init(0)
        assert with_extra_controls(Term(0), (Control(1),)) == Term(0)

    def test_deduplicates(self):
        gate = NamedGate("not", (0,), (Control(1),))
        controlled = with_extra_controls(gate, (Control(1), Control(2)))
        assert len(controlled.controls) == 2

    def test_display_name(self):
        assert NamedGate("T", (0,), inverted=True).display_name() == "T*"
        assert (
            NamedGate("exp(-i%Z)", (0,), param=2.0).display_name()
            == "exp(-i2Z)"
        )
