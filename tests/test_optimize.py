"""The peephole optimizer subsystem (repro.optimize).

Covers the composable passes one by one, the sliding-window core's
commute-aware adjacency scan, randomized statevector equivalence of
optimized vs unoptimized circuits over the full gate vocabulary
(controls, boxed subroutines, and streamed application included),
idempotence of the materialized fixpoint entry point, and the pi-unit
parameter rendering that lets optimizer-merged rotations round-trip
through the Quipper-ASCII interchange format.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest

from repro import Program
from repro.core.builder import build
from repro.core.circuit import BCircuit, Circuit
from repro.core.gates import (
    BoxCall,
    Comment,
    Control,
    Init,
    NamedGate,
    Term,
    format_pi_multiple,
)
from repro.core.qdata import qubit
from repro.core.stream import StreamConsumer, replay_bcircuit
from repro.optimize import (
    PeepholeOptimizer,
    StreamOptimizer,
    optimize_bcircuit,
    optimize_gates,
    optimize_gates_fixpoint,
)
from strategies import random_circuit as _random_circuit


def _H(q):
    return NamedGate("H", (q,))


def _X(q, *controls):
    return NamedGate(
        "not", (q,), tuple(Control(w, pos) for w, pos in controls)
    )


def _Rz(q, t, *controls):
    return NamedGate(
        "Rz", (q,), tuple(Control(w, pos) for w, pos in controls), param=t
    )


class TestPasses:
    def test_adjacent_self_inverse_pair_cancels(self):
        assert optimize_gates([_H(0), _H(0)]) == []
        assert optimize_gates([_X(0, (1, True)), _X(0, (1, True))]) == []

    def test_daggered_pair_cancels(self):
        t = NamedGate("T", (0,))
        assert optimize_gates([t, t.inverse()]) == []

    def test_cancellation_is_control_sensitive(self):
        gates = [_X(0, (1, True)), _X(0, (1, False))]
        assert optimize_gates(gates) == gates

    def test_cancellation_across_disjoint_gates(self):
        spectator = _X(9)
        assert optimize_gates([_H(0), spectator, _H(0)]) == [spectator]

    def test_init_term_pair_cancels(self):
        assert optimize_gates([Init(5), Term(5)]) == []
        kept = [Init(5, True), Term(5, False)]
        assert optimize_gates(kept) == kept  # value mismatch: not inverses

    def test_rotation_merge_and_identity_elision(self):
        merged = optimize_gates([_Rz(0, 0.25), _Rz(0, 0.5)])
        assert merged == [_Rz(0, 0.75)]
        assert optimize_gates([_Rz(0, 0.3), _Rz(0, -0.3)]) == []

    def test_rotation_merges_across_diagonal_gate(self):
        cz = NamedGate("Z", (0,), (Control(1, True),))
        assert optimize_gates([_Rz(0, 0.3), cz, _Rz(0, -0.3)]) == [cz]

    def test_rotation_merges_across_control_dot(self):
        # The shared wire is only a *control* of the middle gate.
        toffoli = _X(2, (0, True), (1, True))
        out = optimize_gates([_Rz(0, 0.4), toffoli, _Rz(0, -0.4)])
        assert out == [toffoli]

    def test_rotation_blocked_by_non_commuting_gate(self):
        gates = [_Rz(0, 0.3), _H(0), _Rz(0, -0.3)]
        assert optimize_gates(gates) == gates

    def test_uncontrolled_fold_uses_phase_period(self):
        # Rz(2pi) = -I: a global phase, elidable when uncontrolled only.
        assert optimize_gates([_Rz(0, math.pi), _Rz(0, math.pi)]) == []
        controlled = [_Rz(0, math.pi, (1, True)), _Rz(0, math.pi, (1, True))]
        (survivor,) = optimize_gates(controlled)
        assert survivor.param == pytest.approx(2 * math.pi)

    def test_daggered_rotation_merges_with_negated_param(self):
        dagger = NamedGate("Rz", (0,), param=0.3, inverted=True)
        assert optimize_gates([_Rz(0, 0.3), dagger]) == []

    def test_clifford_pair_rewrites(self):
        s = NamedGate("S", (0,))
        assert optimize_gates([s, s]) == [NamedGate("Z", (0,))]
        t = NamedGate("T", (0,))
        assert optimize_gates([t, t]) == [s]
        v = NamedGate("V", (0,))
        assert optimize_gates([v, v]) == [NamedGate("X", (0,))]

    def test_hph_conjugation(self):
        out = optimize_gates([_H(0), NamedGate("Z", (0,)), _H(0)])
        assert out == [NamedGate("X", (0,))]
        out = optimize_gates([_H(0), NamedGate("X", (0,)), _H(0)])
        assert out == [NamedGate("Z", (0,))]

    def test_push_not_exposes_cancellation(self):
        gates = [_X(2), _X(3, (2, True)), _X(2)]
        assert optimize_gates(gates) == [_X(3, (2, False))]

    def test_push_not_does_not_hop_noncommuting_gates(self):
        # The T between the NOT and the carrier shares the NOT's wire:
        # the hop must not happen (X;T != T;X).
        gates = [_X(2), NamedGate("T", (2,)), _X(3, (2, True)), _X(2)]
        out = optimize_gates(gates)
        assert out == gates

    def test_uncontrolled_phase_gate_elided(self):
        assert optimize_gates([NamedGate("phase", (), param=0.7)]) == []
        controlled = NamedGate("phase", (), (Control(1, True),), param=0.7)
        assert optimize_gates([controlled]) == [controlled]

    def test_comments_pass_through(self):
        note = Comment("checkpoint")
        assert optimize_gates([_H(0), note, _H(0)]) == [note]

    def test_boxcall_inverse_pair_cancels(self):
        call = BoxCall("f", ((0, "Q"),), ((0, "Q"),))
        assert optimize_gates([call, call.inverse()]) == []


class TestWindow:
    def test_flush_preserves_order(self):
        gates = [_H(k) for k in range(10)]
        assert optimize_gates(gates) == gates

    def test_bounded_window_evicts_oldest(self):
        emitted = []
        optimizer = PeepholeOptimizer(window=4, sink=emitted.append)
        for k in range(10):
            optimizer.feed(_H(k))
        assert len(emitted) == 6  # ten fed, four still windowed
        optimizer.flush()
        assert emitted == [_H(k) for k in range(10)]

    def test_window_memory_is_bounded(self):
        optimizer = PeepholeOptimizer(window=8, sink=lambda gate: None)
        for k in range(10_000):
            optimizer.feed(_Rz(k % 97, 0.1))
        assert len(optimizer._window) <= 8

    def test_evicted_gates_cannot_cancel(self):
        spacers = [_X(k) for k in range(1, 6)]
        gates = [_H(0), *spacers, _H(0)]
        assert optimize_gates(gates, window=4) == gates
        assert optimize_gates(gates, window=16) == spacers


def _fidelity(first, second):
    assert set(first.statevector_wires) == set(second.statevector_wires)
    a, b = first.statevector, second.statevector
    if first.statevector_wires != second.statevector_wires:
        axes = [
            second.statevector_wires.index(w)
            for w in first.statevector_wires
        ]
        n = len(axes)
        b = np.moveaxis(b.reshape((2,) * n), axes, range(n))
    return abs(np.vdot(a.reshape(-1), b.reshape(-1)))


def assert_equivalent(program: Program, optimized: Program):
    """Optimized and original agree on the final state, up to global phase."""
    fidelity = _fidelity(program.run(), optimized.run())
    assert fidelity == pytest.approx(1.0, abs=1e-9)




class TestRandomizedEquivalence:
    @pytest.mark.parametrize("trial", range(24))
    def test_optimized_state_matches(self, trial):
        rnd = random.Random(4200 + trial)
        program = Program.capture(
            lambda qc, qs: _random_circuit(qc, qs, rnd, 40), [qubit] * 4
        )
        optimized = program.optimize()
        optimized.bcircuit.check()  # wiring stays valid
        assert_equivalent(program, optimized)

    @pytest.mark.parametrize("trial", range(6))
    def test_boxed_subroutines(self, trial):
        rnd = random.Random(7000 + trial)

        def body(qc, pair):
            a, b = pair
            qc.hadamard(a)
            qc.gate_T(b)
            qc.gate_T(b)  # merges to S inside the body
            qc.qnot(b, controls=a)
            return pair

        def fn(qc, qs):
            _random_circuit(qc, qs, rnd, 10)
            qc.box("body", body, (qs[0], qs[1]))
            qc.box("body", body, (qs[2], qs[3]))
            _random_circuit(qc, qs, rnd, 10)
            return qs

        program = Program.capture(fn, [qubit] * 4)
        optimized = program.optimize()
        optimized.bcircuit.check()
        # One optimized body, shared across both call sites.
        assert set(optimized.bcircuit.namespace) == {"body"}
        body_names = [
            g.name
            for g in optimized.bcircuit.namespace["body"].circuit.gates
            if isinstance(g, NamedGate)
        ]
        assert "S" in body_names and body_names.count("T") == 0
        assert_equivalent(program, optimized)

    def test_controlled_boxcall_keeps_body_global_phase(self):
        """Phase-period folding must NOT apply inside boxed bodies.

        Rz(2pi) = -I is a pure global phase when applied directly, but a
        subroutine body runs under whatever controls its call site
        pushes down -- eliding it there turns an unobservable global
        phase into a missing *relative* phase and changes outcomes.
        """

        def body(qc, q):
            qc.rotZ(math.pi, q)
            qc.rotZ(math.pi, q)  # Rz(2pi) = -I inside the body
            return q

        def fn(qc, c, q):
            qc.hadamard(c)
            with qc.controls(c):
                qc.box("minus", body, q)
            qc.hadamard(c)
            return c, q

        program = Program.capture(fn, qubit, qubit)
        optimized = program.optimize()
        assert_equivalent(program, optimized)
        # The streamed form applies the same body-safe rule.
        collected = replay_bcircuit(
            program.bcircuit, StreamOptimizer((), _Collector())
        )
        assert_equivalent(program, Program.from_bcircuit(collected))
        # Top level still folds: the same pair outside a body elides.
        assert optimize_gates(
            [_Rz(0, math.pi), _Rz(0, math.pi)]
        ) == []

    def test_reused_body_width_cache_not_poisoned_across_namespaces(self):
        """A reused body whose callee shrank must not have its shared
        width cache invalidated in place: querying the optimized
        hierarchy first must not poison the original's width."""

        def inner(qc, q):
            anc = qc.qinit_qubit(False)
            qc.qnot(anc, controls=q)
            qc.qnot(anc, controls=q)  # cancels; the ancilla pair elides
            qc.qterm(anc)
            return q

        def outer(qc, q):
            qc.box("inner", inner, q)
            return q

        def fn(qc, q):
            qc.box("outer", outer, q)
            return q

        program = Program.capture(fn, qubit)
        bc = program.bcircuit
        original_width = bc.namespace["outer"].width(bc.namespace)
        optimized = optimize_bcircuit(bc)
        # Query the *optimized* namespace first (the poisoning order).
        slim_width = optimized.namespace["outer"].width(optimized.namespace)
        assert slim_width < original_width
        assert bc.namespace["outer"].width(bc.namespace) == original_width

    def test_stream_transform_preserves_duplicate_rules(self):
        """Chaining the same rule twice applies it twice, exactly like
        the materialized Program.transform pipeline."""
        from repro.core.gates import NamedGate

        def t_to_tt(qc, gate):
            if isinstance(gate, NamedGate) and gate.name == "T":
                half = NamedGate("S", gate.targets)
                qc._emit_raw(half)
                qc._emit_raw(half)
                return True
            return False

        def fn(qc, q):
            qc.gate_T(q)
            return q

        program = Program.capture(fn, qubit)

        def s_doubler(qc, gate):
            if isinstance(gate, NamedGate) and gate.name == "S":
                qc._emit_raw(gate)
                qc._emit_raw(gate)
                return True
            return False

        streamed = program.stream().transform(t_to_tt).transform(s_doubler)
        materialized = program.transform(t_to_tt, s_doubler)
        assert streamed.count() == materialized.count()
        twice = program.stream().transform(s_doubler).transform(s_doubler)
        assert twice._rules == (s_doubler, s_doubler)

    def test_identity_body_object_is_reused(self):
        def body(qc, q):
            qc.hadamard(q)
            return q

        def fn(qc, q):
            qc.box("noop", body, q)
            return q

        program = Program.capture(fn, qubit)
        optimized = optimize_bcircuit(program.bcircuit)
        assert (
            optimized.namespace["noop"]
            is program.bcircuit.namespace["noop"]
        )


class _Collector(StreamConsumer):
    """Materialize a (possibly optimized) stream back into a BCircuit."""

    def begin(self, inputs, namespace):
        self.inputs = inputs
        self.gates = []

    def gate(self, gate):
        self.gates.append(gate)

    def finish(self, end):
        return BCircuit(
            Circuit(
                inputs=self.inputs, gates=self.gates, outputs=end.outputs
            ),
            dict(end.namespace),
        )


class TestStreamedOptimization:
    @pytest.mark.parametrize("trial", range(8))
    def test_streamed_application_matches_state(self, trial):
        rnd = random.Random(9100 + trial)
        program = Program.capture(
            lambda qc, qs: _random_circuit(qc, qs, rnd, 30), [qubit] * 4
        )
        collected = replay_bcircuit(
            program.bcircuit, StreamOptimizer((), _Collector())
        )
        collected.check()
        optimized = Program.from_bcircuit(collected)
        assert_equivalent(program, optimized)

    def test_streamed_count_matches_materialized(self):
        from repro.algorithms.bwt.main import bwt_program

        program = bwt_program(3, 1, 0.1)
        materialized = program.transform("binary").optimize().count()
        streamed = program.stream("binary").optimize().count()
        assert streamed == materialized

    def test_stream_stage_order_matches_call_order(self):
        """transform() after optimize() must see the optimized stream,
        mirroring the materialized Program pipeline's stage order."""
        from repro.algorithms.tf.main import part_program

        oracle = part_program("pow17", 2, 2, 1, "orthodox")
        materialized = oracle.optimize().transform("binary").count()
        streamed = oracle.stream().optimize().transform("binary").count()
        assert streamed == materialized

    def test_stream_transform_accepts_gate_base_names(self):
        from repro.algorithms.bwt.main import bwt_program

        program = bwt_program(3, 1, 0.1)
        assert (
            program.stream().transform("binary").count()
            == program.stream("binary").count()
        )

    def test_repeated_no_arg_optimize_does_not_duplicate_passes(self):
        def fn(qc, q):
            qc.hadamard(q)
            return q

        stream = Program.capture(fn, qubit).stream().optimize().optimize()
        (stage,) = stream._stages
        kind, passes = stage
        assert kind == "opt"
        assert len(passes) == len({type(p) for p in passes})

    def test_stream_optimize_chains_compose(self):
        def fn(qc, q):
            qc.hadamard(q)
            qc.hadamard(q)
            qc.gate_T(q)
            qc.gate_T(q)
            return q

        program = Program.capture(fn, qubit)
        # Chained optimize() extends the pass set instead of replacing it.
        counts = program.stream().optimize("cancel").optimize("clifford").count()
        assert counts == {("S", 0, 0): 1}

    def test_stream_optimizer_reduces_while_generating(self):
        def fn(qc, qs):
            for q in qs:
                qc.hadamard(q)
                qc.hadamard(q)
            qc.gate_T(qs[0])
            return qs

        program = Program.capture(fn, [qubit] * 3)
        counts = program.stream().optimize().count()
        assert sum(counts.values()) == 1  # only the T survives


class TestIdempotence:
    @pytest.mark.parametrize("trial", range(10))
    def test_random_circuits(self, trial):
        rnd = random.Random(5300 + trial)
        bc, _ = build(
            lambda qc, qs: _random_circuit(qc, qs, rnd, 50), [qubit] * 4
        )
        once = optimize_bcircuit(bc)
        twice = optimize_bcircuit(once)
        assert twice == once

    def test_algorithm_circuit(self):
        from repro.algorithms.bwt.main import bwt_program

        once = bwt_program(3, 1, 0.1).transform("binary").optimize()
        again = once.optimize()
        assert again.bcircuit == once.bcircuit

    def test_gate_list_fixpoint(self):
        rnd = random.Random(11)
        bc, _ = build(
            lambda qc, qs: _random_circuit(qc, qs, rnd, 60), [qubit] * 4
        )
        once = optimize_gates_fixpoint(bc.circuit.gates)
        assert optimize_gates_fixpoint(once) == once


class TestPiUnitsRoundTrip:
    """Satellite fix: rotation params print in units of pi where exact."""

    def test_display_names(self):
        assert _Rz(0, math.pi / 2).display_name() == "Rz(pi/2)"
        assert _Rz(0, -math.pi / 2).display_name() == "Rz(-pi/2)"
        assert _Rz(0, 3 * math.pi / 4).display_name() == "Rz(3pi/4)"
        assert _Rz(0, 2 * math.pi).display_name() == "Rz(2pi)"
        assert NamedGate("Ry", (0,), param=math.pi).display_name() == "Ry(pi)"
        # Non-multiples keep the exact float rendering.
        assert _Rz(0, 0.3).display_name() == "Rz(0.3)"

    def test_repr_uses_display_name(self):
        assert "Rz(pi/2)" in repr(_Rz(0, math.pi / 2))

    def test_format_pi_multiple_is_bit_exact(self):
        from repro.io.ascii_parser import _parse_number

        for num in range(-12, 13):
            for den in (1, 2, 3, 4, 6, 8, 16):
                value = num * math.pi / den
                text = format_pi_multiple(value)
                if text is None:
                    continue
                assert _parse_number(text) == value

    def test_format_pi_multiple_unreduced_fractions_stay_exact(self):
        """Reducing 15pi/12 to 5pi/4 drifts by one ulp; the formatter
        must emit whichever spelling round-trips bit-exactly."""
        from repro.io.ascii_parser import _parse_number

        for num in range(-60, 61):
            for den in (3, 5, 6, 12):
                value = num * math.pi / den
                text = format_pi_multiple(value)
                if text is not None:
                    assert _parse_number(text) == value, (num, den, text)

    def test_merged_rotation_round_trips_through_interchange(self):
        from repro.io import dumps, loads

        def fn(qc, q):
            qc.rotZ(math.pi / 4, q)
            qc.rotZ(math.pi / 4, q)  # merges to Rz(pi/2)
            qc.expZt(math.pi / 2, q)
            return q

        optimized = Program.capture(fn, qubit).optimize()
        text = optimized.dumps()
        assert "Rz(pi/2)" in text and "exp(-ipi/2Z)" in text
        assert loads(text) == optimized.bcircuit

    def test_random_pi_params_round_trip(self):
        from repro.io import dumps, loads

        rnd = random.Random(77)

        def fn(qc, q):
            for _ in range(20):
                qc.rotZ(
                    rnd.randrange(-8, 9) * math.pi / rnd.choice((1, 2, 4, 8)),
                    q,
                )
            return q

        bc, _ = build(fn, qubit)
        assert loads(dumps(bc)) == bc


class TestProgramSurface:
    def test_optimize_accepts_registry_names(self):
        def fn(qc, q):
            qc.hadamard(q)
            qc.hadamard(q)
            qc.gate_T(q)
            return q

        program = Program.capture(fn, qubit)
        slim = program.optimize("cancel")
        assert slim.total_gates() == 1
        with pytest.raises(ValueError):
            program.optimize("definitely-not-a-pass").bcircuit

    def test_controlled_after_optimize_warns_about_folded_phase(self):
        """optimize() may drop global-phase gates; .controlled() later
        would make that phase relative -- the composition must warn."""

        def fn(qc, q):
            qc.rotZ(math.pi, q)
            qc.rotZ(math.pi, q)  # Rz(2pi): global phase, foldable
            qc.hadamard(q)
            return q

        program = Program.capture(fn, qubit)
        with pytest.warns(RuntimeWarning, match="global phase"):
            program.optimize().controlled().bcircuit
        # The phase-exact form neither folds nor warns, and composes
        # correctly with controlled().
        import warnings

        exact = program.optimize(fold_global_phase=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            controlled = exact.controlled()
        # The pair still merges (exact rewrite) but the Rz(2pi) result
        # survives under the phase-exact chain.
        assert controlled.count()[("Rz", 1, 0)] == 1
        # Controlling first then optimizing is always safe (and warns
        # nothing).
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            program.controlled().optimize().bcircuit

    def test_optimize_composes_with_transform(self):
        from repro.algorithms.bwt.main import bwt_program

        program = bwt_program(3, 1, 0.1)
        plain = program.transform("toffoli").total_gates()
        slim = program.transform("toffoli").optimize().total_gates()
        assert slim < plain

    def test_cli_flag(self, capsys):
        from repro.algorithms.bwt.main import main as bwt_main

        assert bwt_main(["-n", "3", "-g", "binary", "-f", "gatecount"]) == 0
        plain = capsys.readouterr().out
        assert bwt_main(
            ["-n", "3", "-g", "binary", "-f", "gatecount", "-O"]
        ) == 0
        slim = capsys.readouterr().out

        def total(report: str) -> int:
            for line in report.splitlines():
                if line.startswith("Total gates:"):
                    return int(line.split(":")[1].replace(",", ""))
            raise AssertionError(f"no total in {report!r}")

        assert total(slim) < total(plain)

    def test_tf_cli_keeps_oracle_only_spelling(self, capsys):
        from repro.algorithms.tf.main import main as tf_main

        assert tf_main(
            ["--oracle-only", "-l", "2", "-n", "2", "-r", "1",
             "-f", "gatecount"]
        ) == 0
        assert "Total gates" in capsys.readouterr().out
