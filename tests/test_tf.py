"""Tests for the Triangle Finding algorithm (paper Section 5)."""

import random

import pytest

from repro import aggregate_gate_count, build, total_gates
from repro.core.gates import BoxCall, Comment
from repro.datatypes import IntM, IntTF, qinttf_shape
from repro.sim import run_classical_generic
from repro.algorithms.tf import (
    QWTFPSpec,
    a1_QWTFP,
    a5_TestTriangleEdges,
    a6_QWSH,
    classical_edge,
    o4_POW17,
    o8_MUL,
    orthodox_oracle,
    simple_oracle,
)
from repro.algorithms.tf.main import build_part
from repro.algorithms.tf.simulate import run_all


class TestOracleSuite:
    """The paper's Simulate module: the oracle test suite."""

    def test_all_checks_at_l4(self):
        results = run_all(l=4, n=3)
        assert all(results.values()), results

    def test_pow17_at_l5(self):
        modulus = 31

        def circ(qc, x):
            return o4_POW17(qc, x)

        for a in (0, 1, 5, 17, 30):
            x, x17 = run_classical_generic(circ, IntTF(a, 5))
            assert int(x17) == pow(a, 17, modulus)

    def test_classical_edge_is_symmetric(self):
        for u in range(8):
            for v in range(8):
                assert classical_edge(u, v, 4) == classical_edge(v, u, 4)


class TestStructure:
    def test_pow17_box_structure(self):
        """Figure 2: o4 contains nine o8 invocations (4 squarings forward,
        the multiply, four squarings mirrored)."""
        bc = build_part("pow17", 4, 3, 2, "orthodox")
        o4_body = bc.namespace["o4"].circuit
        calls = [g for g in o4_body.gates if isinstance(g, BoxCall)]
        o8_calls = [c for c in calls if c.name == "o8"]
        assert len(o8_calls) == 9
        assert sum(c.inverted for c in o8_calls) == 4

    def test_pow17_endpoints_match_paper(self):
        """4 inputs, 8 outputs, as in the paper's gate-count listing."""
        bc = build_part("pow17", 4, 3, 2, "orthodox")
        assert bc.circuit.in_arity == 4
        assert bc.circuit.out_arity == 8

    def test_mul_ladder_structure(self):
        """Figure 3: l controlled-add boxes forward plus l mirrored."""
        bc = build_part("mul", 4, 3, 2, "orthodox")
        o8_body = bc.namespace["o8"].circuit
        o7_calls = [
            g for g in o8_body.gates
            if isinstance(g, BoxCall) and g.name == "o7"
        ]
        assert len(o7_calls) == 8  # 4 forward + 4 mirrored
        assert sum(c.inverted for c in o7_calls) == 4

    def test_comments_present(self):
        bc = build_part("pow17", 4, 3, 2, "orthodox")
        comments = [
            g.text
            for g in bc.namespace["o4"].circuit.gates
            if isinstance(g, Comment)
        ]
        assert "ENTER: o4_POW17" in comments
        assert "EXIT: o4_POW17" in comments

    def test_counts_scale_with_l(self):
        small = total_gates(
            aggregate_gate_count(build_part("pow17", 4, 3, 2, "orthodox"))
        )
        large = total_gates(
            aggregate_gate_count(build_part("pow17", 8, 3, 2, "orthodox"))
        )
        assert large > 2 * small


EDGES = {(0, 1), (1, 2), (0, 2), (2, 3)}


def _edge(u, v):
    return (min(u, v), max(u, v)) in EDGES


def _spec(r=1):
    return QWTFPSpec(n=2, r=r, l=4, edge_oracle=simple_oracle(EDGES))


class TestWalkStep:
    @pytest.mark.parametrize("r", [1, 2])
    def test_a6_swaps_and_maintains_edges(self, r):
        spec = _spec(r)
        rng = random.Random(5)
        for _ in range(4):
            size, n = spec.tuple_size, spec.n
            tuple_vals = [rng.randrange(4) for _ in range(size)]
            i_val = rng.randrange(size)
            v_val = rng.randrange(4)

            def step(qc):
                tt = {
                    j: [
                        qc.qinit_qubit(bool((tuple_vals[j] >> (n - 1 - b)) & 1))
                        for b in range(n)
                    ]
                    for j in range(size)
                }
                i = IntM(i_val, spec.r).qinit_shape(qc)
                v = [
                    qc.qinit_qubit(bool((v_val >> (n - 1 - b)) & 1))
                    for b in range(n)
                ]
                ee = {
                    j: {
                        k: qc.qinit_qubit(_edge(tuple_vals[j], tuple_vals[k]))
                        for k in range(j)
                    }
                    for j in range(1, size)
                }
                a6_QWSH(qc, spec, tt, i, v, ee, diffusion=False)
                return tt, i, v, ee

            tt, i, v, ee = run_classical_generic(step)
            new_tuple = list(tuple_vals)
            new_tuple[i_val] = v_val
            got = [
                sum(int(b) << (n - 1 - k) for k, b in enumerate(tt[j]))
                for j in range(size)
            ]
            assert got == new_tuple
            got_v = sum(int(b) << (n - 1 - k) for k, b in enumerate(v))
            assert got_v == tuple_vals[i_val]
            for j in range(1, size):
                for k in range(j):
                    assert ee[j][k] == _edge(new_tuple[j], new_tuple[k])

    def test_a5_detects_triangle(self):
        spec = _spec(r=2)

        def circ(tuple_vals):
            def inner(qc):
                size = spec.tuple_size
                ee = {
                    j: {
                        k: qc.qinit_qubit(_edge(tuple_vals[j], tuple_vals[k]))
                        for k in range(j)
                    }
                    for j in range(1, size)
                }
                w = qc.qinit_qubit(False)
                a5_TestTriangleEdges(qc, spec, ee, w)
                return ee, w

            return inner

        # tuple containing the planted triangle {0,1,2}
        ee, w = run_classical_generic(circ([0, 1, 2, 3]))
        assert w is True
        # tuple without a triangle
        ee, w = run_classical_generic(circ([0, 1, 3, 3]))
        assert w is False


class TestFullAlgorithm:
    def test_full_circuit_builds_and_checks(self):
        spec = _spec(r=1)
        bc, _ = build(
            lambda qc: a1_QWTFP(qc, spec, grover_iterations=2, walk_steps=2)
        )
        width = bc.check()
        assert width > 8
        counts = aggregate_gate_count(bc)
        assert counts[("Meas", 0, 0)] == spec.tuple_size * spec.n + spec.r + spec.n

    def test_walk_steps_multiply_counts(self):
        spec = _spec(r=1)

        def count_at(steps):
            bc, _ = build(
                lambda qc: a1_QWTFP(
                    qc, spec, grover_iterations=1, walk_steps=steps
                )
            )
            return total_gates(aggregate_gate_count(bc))

        ten = count_at(10)
        thousand = count_at(1000)
        assert thousand > 50 * ten  # walk dominates; scales ~linearly

    def test_trillion_scale_count_is_fast(self):
        import time

        spec = QWTFPSpec(
            n=8, r=4, l=15, edge_oracle=orthodox_oracle(15)
        )
        t0 = time.time()
        bc, _ = build(
            lambda qc: a1_QWTFP(
                qc, spec, grover_iterations=4096, walk_steps=65536
            )
        )
        counts = aggregate_gate_count(bc)
        elapsed = time.time() - t0
        assert total_gates(counts) > 10 ** 12
        assert elapsed < 120  # "under two minutes" (paper Section 5.4)


class TestCLI:
    def test_gatecount_output(self, capsys):
        from repro.algorithms.tf.main import main

        assert main(["-s", "pow17", "-l", "4", "-f", "gatecount"]) == 0
        out = capsys.readouterr().out
        assert "Aggregated gate count:" in out
        assert "Qubits in circuit:" in out

    def test_ascii_output(self, capsys):
        from repro.algorithms.tf.main import main

        assert main(["-s", "mul", "-l", "3", "-f", "ascii"]) == 0
        out = capsys.readouterr().out
        assert 'Subroutine: "o8"' in out
