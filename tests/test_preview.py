"""Tests for the column-art circuit preview renderer."""

import pytest

from repro import build, neg, qubit
from repro.core.errors import QuipperError
from repro.output.preview import (
    preview_bcircuit,
    preview_circuit,
    preview_generic,
)


def test_controls_and_target_symbols():
    def circ(qc, a, b, c):
        qc.qnot(c, controls=(a, neg(b)))
        return a, b, c

    art = preview_generic(circ, qubit, qubit, qubit)
    lines = art.splitlines()
    assert "*" in lines[0]
    assert "o" in lines[1]
    assert "X" in lines[2]


def test_ancilla_brackets():
    def circ(qc, a):
        with qc.ancilla() as x:
            qc.qnot(x, controls=a)
            qc.qnot(x, controls=a)
        return a

    art = preview_generic(circ, qubit)
    assert "|0>" in art
    assert "<0|" in art


def test_measurement_and_classical_fill():
    def circ(qc, a):
        m = qc.measure(a)
        qc.cnot_bit(m)
        return m

    art = preview_generic(circ, qubit)
    assert "[Meas]" in art


def test_named_gate_boxes():
    def circ(qc, a, b):
        qc.hadamard(a)
        qc.gate_T(b, inverted=True)
        return a, b

    art = preview_generic(circ, qubit, qubit)
    assert "[H]" in art
    assert "[T*]" in art


def test_subroutines_rendered():
    def body(qc, a):
        qc.hadamard(a)
        return a

    def circ(qc, a):
        qc.nbox("steps", 7, body, a)
        return a

    art = preview_generic(circ, qubit)
    assert "[stepsx7]" in art
    assert 'Subroutine "steps":' in art


def test_size_guard():
    def circ(qc, a):
        for _ in range(300):
            qc.hadamard(a)
        return a

    bc, _ = build(circ, qubit)
    with pytest.raises(QuipperError):
        preview_circuit(bc.circuit)
    # explicit budget raises the cap
    assert preview_circuit(bc.circuit, max_gates=400)


def test_comments_skipped():
    def circ(qc, a):
        qc.comment("hello")
        qc.hadamard(a)
        return a

    art = preview_generic(circ, qubit)
    assert "hello" not in art
