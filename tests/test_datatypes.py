"""Tests for the quantum data types (IntM/QDInt, IntTF/QIntTF, FPRealM)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import build
from repro.core.errors import ShapeMismatchError
from repro.core.wires import Bit, Qubit
from repro.datatypes import (
    CInt,
    FPRealM,
    IntM,
    IntTF,
    QDInt,
    bools_msb_first,
    fpreal_shape,
    int_from_bools_msb,
    qdint_shape,
    qinttf_shape,
)
from repro.sim import run_classical_generic


class TestIntM:
    @given(st.integers(-300, 300), st.integers(-300, 300))
    def test_add_wraps(self, a, b):
        x = IntM(a, 8) + IntM(b, 8)
        assert x.value == (a + b) % 256

    @given(st.integers(-300, 300), st.integers(-300, 300))
    def test_mul_wraps(self, a, b):
        assert (IntM(a, 8) * IntM(b, 8)).value == (a * b) % 256

    def test_signed_value(self):
        assert IntM(255, 8).signed_value == -1
        assert IntM(127, 8).signed_value == 127

    def test_int_coercion(self):
        assert IntM(5, 4) + 3 == 8
        assert int(IntM(5, 4)) == 5

    def test_width_mismatch(self):
        with pytest.raises(ShapeMismatchError):
            IntM(1, 4) + IntM(1, 5)

    @given(st.integers(0, 255))
    def test_bools_round_trip(self, v):
        assert int_from_bools_msb(bools_msb_first(v, 8)) == v

    def test_qinit_round_trip(self):
        def circ(qc):
            return qc.qinit(IntM(11, 5))

        bc, outs = build(circ)
        assert isinstance(outs, QDInt)
        assert len(outs) == 5
        value = run_classical_generic(lambda qc: qc.qinit(IntM(11, 5)))
        assert value == 11


class TestIntTF:
    @given(st.integers(0, 500), st.integers(0, 500))
    def test_modular_add(self, a, b):
        assert (IntTF(a, 5) + IntTF(b, 5)).value == (a + b) % 31

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_modular_mul(self, a, b):
        assert (IntTF(a, 5) * IntTF(b, 5)).value == (a * b) % 31

    def test_double_zero_equality(self):
        # 2^l - 1 is the alternate representation of zero
        assert IntTF(31, 5) == IntTF(0, 5)
        assert IntTF(31, 5) == 0

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            IntTF(0, 1)


class TestFPReal:
    @given(st.floats(-3.9, 3.9, allow_nan=False))
    def test_value_round_trip(self, v):
        m = FPRealM(v, 3, 10)
        assert abs(m.value - v) <= 2 ** -10

    def test_negative_representation(self):
        m = FPRealM(-1.5, 3, 4)
        assert m.value == -1.5

    def test_shape_specimen(self):
        spec = fpreal_shape(3, 5)
        assert spec.length == 8
        assert spec.integer_bits == 3

    def test_format_mismatch(self):
        from repro.datatypes.fpreal import FPReal

        with pytest.raises(ShapeMismatchError):
            FPReal([Qubit(0)], 3, 4)

    def test_qinit_readout(self):
        value = run_classical_generic(
            lambda qc: qc.qinit(FPRealM(1.25, 3, 6))
        )
        assert float(value) == 1.25


class TestRegisters:
    def test_bit_accessor_is_little_endian(self):
        reg = QDInt([Qubit(0), Qubit(1), Qubit(2)])  # MSB first
        assert reg.bit(0).wire_id == 2
        assert reg.bit(2).wire_id == 0

    def test_bits_le(self):
        reg = QDInt([Qubit(0), Qubit(1)])
        assert [w.wire_id for w in reg.bits_le()] == [1, 0]

    def test_measure_produces_cint(self):
        def circ(qc):
            reg = qc.qinit(IntM(6, 4))
            return qc.measure(reg)

        bc, outs = build(circ)
        assert isinstance(outs, CInt)
        assert all(isinstance(w, Bit) for w in outs.wires)

    def test_shapes(self):
        assert len(qdint_shape(7)) == 7
        assert len(qinttf_shape(4)) == 4

    def test_rebuild_wrong_length(self):
        with pytest.raises(ShapeMismatchError):
            qdint_shape(3).qdata_rebuild([Qubit(0)])
