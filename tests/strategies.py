"""Shared randomized-circuit strategies for the test suites.

The kernel, optimizer, batched-engine, and QASM round-trip suites all
exercise randomized circuits over the gate vocabulary.  The generators
live here so every suite draws from one seeded, vocabulary-parameterized
source instead of hand-maintained copies:

* :func:`superpose` -- the entangling preamble giving every amplitude a
  distinct value;
* :func:`random_gates` -- gate-level circuits over the whole extended
  model (controls, classical wires, dynamic Init/Term, mid-circuit
  Measure/Discard), with the mix thresholds as knobs so each suite keeps
  its historical distribution;
* :func:`random_circuit` -- builder-level circuits (used through
  ``Program.capture``) biased toward optimizer-relevant structure:
  cancellation fodder, rotation merges, ``with_computed`` blocks;
* :func:`random_qasm_gates` -- gate-level circuits restricted to the
  OpenQASM-2-expressible subset of the vocabulary, for export/import
  round-trip and mutation testing.

Everything is deterministic given the caller's ``random.Random``.
"""

from __future__ import annotations

import math
import random

from repro.core.builder import neg
from repro.core.gates import (
    CInit,
    Control,
    Discard,
    Init,
    Measure,
    NamedGate,
    Term,
)
from repro.core.wires import CLASSICAL
from repro.sim.matrices import _FIXED, gate_matrix_cached

#: Parametrized gate names and a specimen-parameter generator.
PARAMETRIZED = {
    "exp(-i%Z)": lambda rnd: rnd.uniform(-2.0, 2.0),
    "exp(-i%ZZ)": lambda rnd: rnd.uniform(-2.0, 2.0),
    "R(2pi/%)": lambda rnd: float(rnd.randint(1, 6)),
    "rGate": lambda rnd: float(rnd.randint(1, 6)),
    "Rx": lambda rnd: rnd.uniform(-math.pi, math.pi),
    "Ry": lambda rnd: rnd.uniform(-math.pi, math.pi),
    "Rz": lambda rnd: rnd.uniform(-math.pi, math.pi),
    "phase": lambda rnd: rnd.uniform(-math.pi, math.pi),
}

#: Every simulatable gate name: the fixed matrices plus the parametrized
#: family.
VOCABULARY = sorted(set(_FIXED) | set(PARAMETRIZED))


def sample_param(name, rnd):
    """A specimen parameter for *name* (``None`` for fixed gates)."""
    return PARAMETRIZED[name](rnd) if name in PARAMETRIZED else None


def gate_arity(name, param=None, inverted=False):
    """Target count of a vocabulary gate, read off its matrix."""
    return gate_matrix_cached(name, param, inverted).shape[0].bit_length() - 1


def superpose(n):
    """An entangling preamble giving every amplitude a distinct value."""
    gates = [NamedGate("H", (w,)) for w in range(n)]
    for w in range(n):
        gates.append(NamedGate("Rz", ((w + 1) % n,), param=0.3 + 0.4 * w))
        gates.append(NamedGate("T", (w,), controls=(Control((w + 1) % n),)))
    return gates


def random_gates(
    rnd,
    n_qubits,
    *,
    steps=40,
    gate_p=0.70,
    ancilla_p=0.10,
    cinit_p=0.10,
    classical_control_p=0.3,
    measure_p=0.5,
):
    """A random gate list over the whole extended circuit model.

    Starts from :func:`superpose`, then draws *steps* events: vocabulary
    gates with random quantum/classical controls and inversion
    (probability *gate_p*), Init/controlled-T/Term ancilla triples
    (*ancilla_p*), fresh classical wires via ``CInit`` (*cinit_p*), and
    otherwise mid-circuit ``Measure``/``Discard`` of a live qubit.  The
    probabilities are the knobs the historical per-suite copies differed
    by; the structure is shared.
    """
    gates = list(superpose(n_qubits))
    next_wire = n_qubits
    live = list(range(n_qubits))
    classical = []
    gate_t = gate_p
    ancilla_t = gate_p + ancilla_p
    cinit_t = gate_p + ancilla_p + cinit_p
    for _ in range(steps):
        kind = rnd.random()
        if kind < gate_t and len(live) >= 2:
            name = rnd.choice(VOCABULARY)
            param = sample_param(name, rnd)
            arity = gate_arity(name, param)
            if arity > len(live):
                continue
            picks = rnd.sample(live, min(len(live), arity + 2))
            targets = tuple(picks[:arity])
            controls = []
            for extra in picks[arity:]:
                if rnd.random() < 0.5:
                    controls.append(Control(extra, rnd.random() < 0.5))
            if classical and rnd.random() < classical_control_p:
                controls.append(
                    Control(rnd.choice(classical), rnd.random() < 0.5,
                            CLASSICAL)
                )
            gates.append(
                NamedGate(
                    name, targets, tuple(controls),
                    inverted=rnd.random() < 0.3, param=param,
                )
            )
        elif kind < ancilla_t:
            # Dynamic allocation: Init an ancilla, use it only as a
            # control (so it stays in its basis state), Term it back.
            value = rnd.random() < 0.5
            ancilla = next_wire
            next_wire += 1
            gates.append(Init(ancilla, value))
            gates.append(
                NamedGate("T", (rnd.choice(live),),
                          (Control(ancilla, True),))
            )
            gates.append(Term(ancilla, value))
        elif kind < cinit_t:
            classical.append(next_wire)
            gates.append(CInit(next_wire, rnd.random() < 0.5))
            next_wire += 1
        elif len(live) > 2:
            # Mid-circuit measurement / discard.
            victim = rnd.choice(live)
            live.remove(victim)
            if rnd.random() < measure_p:
                gates.append(Measure(victim))
                classical.append(victim)
            else:
                gates.append(Discard(victim))
    return gates


#: Builder-level name pools (the optimizer suite's historical mix).
PLAIN_NAMES = ("X", "Y", "Z", "H", "S", "T", "V", "E", "iX")
ROTATION_NAMES = ("Rz", "Rx", "Ry", "exp(-i%Z)")


def random_circuit(qc, qs, rnd: random.Random, length: int):
    """A random builder-level circuit biased toward optimizer structure.

    Emits plain/rotation gates with 0-2 positive/negative controls,
    deliberate cancellation fodder (a gate then its inverse), swap/W
    pairs, and ``with_computed`` ancilla blocks.  Use through
    ``Program.capture(lambda qc, qs: random_circuit(qc, qs, rnd, n),
    [qubit] * width)``.
    """
    wires = list(qs)

    def pick_controls(exclude):
        pool = [q for q in wires if q is not exclude]
        rnd.shuffle(pool)
        picked = pool[: rnd.randint(0, 2)]
        return [q if rnd.random() < 0.7 else neg(q) for q in picked] or None

    for _ in range(length):
        roll = rnd.random()
        target = rnd.choice(wires)
        if roll < 0.35:
            qc.named_gate(
                rnd.choice(PLAIN_NAMES), target,
                controls=pick_controls(target),
                inverted=rnd.random() < 0.3,
            )
        elif roll < 0.60:
            name = rnd.choice(ROTATION_NAMES)
            param = rnd.choice(
                [rnd.uniform(-3.0, 3.0), math.pi / 2, math.pi / 4,
                 -math.pi / 2, math.pi]
            )
            qc.named_gate(
                name, target, controls=pick_controls(target), param=param
            )
        elif roll < 0.75:
            # Deliberate cancellation fodder: a gate then its inverse.
            name = rnd.choice(PLAIN_NAMES)
            controls = pick_controls(target)
            qc.named_gate(name, target, controls=controls)
            qc.named_gate(
                name, target, controls=controls,
                inverted=name not in ("X", "Y", "Z", "H"),
            )
        elif roll < 0.85:
            other = rnd.choice([q for q in wires if q is not target])
            qc.named_gate(
                rnd.choice(("swap", "W")), target, other, controls=None
            )
        else:
            # An ancilla-scoped compute/act/uncompute block.
            def compute():
                anc = qc.qinit_qubit(False)
                qc.qnot(anc, controls=(target,))
                return anc

            def act(anc):
                qc.gate_T(anc)
                qc.gate_Z(rnd.choice(wires), controls=anc)
                return None

            qc.with_computed(compute, act)
            # with_computed leaves the replayed Init's inverse (a Term)
            # closing the ancilla.
    return qs


#: The OpenQASM-2-expressible subset: names the exporter can emit in
#: uncontrolled form (everything simulatable), and the control shapes it
#: can encode (at most one quantum control for these names, two for X,
#: at most one classical control on any gate).
QASM_CONTROLLABLE = ("X", "not", "Y", "Z", "H", "Rz", "R(2pi/%)", "rGate",
                     "swap")
QASM_UNCONTROLLED = tuple(
    n for n in VOCABULARY if n not in ("omega", "phase")
) + ("phase",)


def random_qasm_gates(rnd, n_qubits, *, steps=30, measure_p=0.12):
    """A random gate list restricted to the QASM-2-exportable dialect.

    Every qubit stays an input (no Init/Term: the importer models all
    ``qreg`` qubits as circuit inputs, so keeping the generator
    allocation-free makes export -> import -> export structurally
    byte-stable).  Mid-circuit measurement and single-classical-control
    guards are included; gate/control shapes follow the exporter's
    encodable subset.
    """
    gates = []
    live = list(range(n_qubits))
    classical = []
    for _ in range(steps):
        roll = rnd.random()
        if roll < measure_p and len(live) > 2:
            victim = rnd.choice(live)
            live.remove(victim)
            gates.append(Measure(victim))
            classical.append(victim)
            continue
        if roll < 2 * measure_p and classical and len(live) >= 1:
            # A classically-guarded gate.
            name = rnd.choice(QASM_CONTROLLABLE[:6])
            param = sample_param(name, rnd)
            arity = gate_arity(name, param)
            if arity > len(live):
                continue
            targets = tuple(rnd.sample(live, arity))
            guard = Control(rnd.choice(classical), rnd.random() < 0.5,
                            CLASSICAL)
            gates.append(NamedGate(name, targets, (guard,), param=param))
            continue
        name = rnd.choice(QASM_UNCONTROLLED)
        param = sample_param(name, rnd)
        arity = gate_arity(name, param)
        if arity > len(live):
            continue
        targets = tuple(rnd.sample(live, arity))
        controls = ()
        if name in QASM_CONTROLLABLE and len(live) > arity:
            pool = [w for w in live if w not in targets]
            max_ctls = 2 if name in ("X", "not") else 1
            n_ctls = rnd.randint(0, min(max_ctls, len(pool)))
            picked = rnd.sample(pool, n_ctls)
            controls = tuple(
                Control(w, rnd.random() < 0.7) for w in picked
            )
        inverted = (
            rnd.random() < 0.3
            if name in ("S", "T", "V", "E", "W", "iX") and not controls
            else False
        )
        gates.append(
            NamedGate(name, targets, controls, inverted=inverted,
                      param=param)
        )
    return gates
