"""Tests for shape-generic quantum data (QCData/QShape)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ShapeMismatchError
from repro.core.qdata import (
    bit,
    qdata_leaves,
    qdata_rebuild,
    qubit,
    same_shape,
    shape_signature,
)
from repro.core.wires import Bit, Qubit
from repro.datatypes import QDInt, qdint_shape


class TestLeaves:
    def test_nested_structure(self):
        data = (Qubit(0), [Qubit(1), Bit(2)], {"a": Qubit(3)})
        leaves = qdata_leaves(data)
        assert [w.wire_id for w in leaves] == [0, 1, 2, 3]

    def test_parameters_carry_no_wires(self):
        data = (Qubit(0), 42, "label", None, 3.14)
        assert len(qdata_leaves(data)) == 1

    def test_dict_sorted_by_key(self):
        data = {2: Qubit(20), 1: Qubit(10)}
        assert [w.wire_id for w in qdata_leaves(data)] == [10, 20]

    def test_custom_register(self):
        reg = QDInt([Qubit(5), Qubit(6)])
        assert [w.wire_id for w in qdata_leaves(reg)] == [5, 6]

    def test_non_qdata_rejected(self):
        with pytest.raises(ShapeMismatchError):
            qdata_leaves(object())


class TestRebuild:
    def test_round_trip(self):
        shape = (qubit, [qubit, bit], {"k": qubit})
        wires = [Qubit(10), Qubit(11), Bit(12), Qubit(13)]
        rebuilt = qdata_rebuild(shape, wires)
        assert qdata_leaves(rebuilt) == wires

    def test_parameters_copied_through(self):
        shape = (qubit, 7, "tag")
        rebuilt = qdata_rebuild(shape, [Qubit(0)])
        assert rebuilt[1] == 7
        assert rebuilt[2] == "tag"

    def test_too_few_wires(self):
        with pytest.raises(ShapeMismatchError):
            qdata_rebuild((qubit, qubit), [Qubit(0)])

    def test_too_many_wires(self):
        with pytest.raises(ShapeMismatchError):
            qdata_rebuild(qubit, [Qubit(0), Qubit(1)])

    def test_register_rebuild_respects_type(self):
        reg = qdint_shape(3)
        rebuilt = qdata_rebuild(reg, [Bit(0), Bit(1), Bit(2)])
        from repro.datatypes import CInt

        assert isinstance(rebuilt, CInt)


class TestSignatures:
    def test_same_shape_same_signature(self):
        assert shape_signature((qubit, [qubit])) == shape_signature(
            (Qubit(9), [Qubit(4)])
        )

    def test_types_distinguished(self):
        assert shape_signature(qubit) != shape_signature(bit)

    def test_parameters_in_signature(self):
        assert shape_signature((qubit, 1)) != shape_signature((qubit, 2))

    def test_register_length_in_signature(self):
        assert shape_signature(qdint_shape(3)) != shape_signature(
            qdint_shape(4)
        )

    def test_same_shape_predicate(self):
        assert same_shape([qubit, qubit], [Qubit(0), Qubit(1)])
        assert not same_shape([qubit], [qubit, qubit])
        assert not same_shape(qubit, object())


@given(st.integers(min_value=1, max_value=8))
def test_rebuild_preserves_list_length(n):
    shape = [qubit] * n
    wires = [Qubit(i) for i in range(n)]
    assert qdata_leaves(qdata_rebuild(shape, wires)) == wires


@given(
    st.recursive(
        st.sampled_from(["q", "b", True, 3]),
        lambda children: st.lists(children, max_size=3).map(tuple),
        max_leaves=12,
    )
)
def test_signature_stable_under_rebuild(spec):
    def realize(s):
        if s == "q":
            return qubit
        if s == "b":
            return bit
        if isinstance(s, tuple):
            return tuple(realize(x) for x in s)
        return s

    shape = realize(spec)
    leaves = qdata_leaves(shape)
    fresh = [
        Qubit(i) if isinstance(w, Qubit) else Bit(i)
        for i, w in enumerate(leaves)
    ]
    rebuilt = qdata_rebuild(shape, fresh)
    assert shape_signature(rebuilt) == shape_signature(shape)
