"""Telemetry subsystem suite: spans, metrics, sinks, and zero-cost off.

The two contracts under test:

* **Enabled**: spans nest correctly across the whole pipeline --
  including the thread hop of ``GateStream.gates()`` and fused
  ``StreamTransformer`` stages -- and every sink (summary table, JSONL,
  Chrome trace) renders a loadable, internally consistent view.
* **Disabled**: instrumented code produces bit-identical results and
  the per-gate hot path performs no telemetry allocation.
"""

from __future__ import annotations

import io
import json
import threading
import tracemalloc

import pytest

from repro import Program, obs, qubit
from repro.algorithms.tf.main import main as tf_main
import importlib

from repro.obs import core as obs_core

# The package re-exports the inline *function* under the same name, so
# the module itself has to come from importlib.
_inline_mod = importlib.import_module("repro.transform.inline")


@pytest.fixture(autouse=True)
def _fresh_compile_pool():
    """Isolate tests from the process-wide digest-keyed compile pool.

    The bell/boxed programs here digest equal across tests, so without
    this a later test would adopt a pooled compiled stream and its
    expected ``compile`` span / miss counters would never appear.
    """
    _inline_mod._DIGEST_POOL.clear()
    yield
    _inline_mod._DIGEST_POOL.clear()


def _bell_program(name: str = "bell") -> Program:
    def bell(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return qc.measure((a, b))

    return Program.capture(bell, qubit, qubit, name=name)


def _boxed_program() -> Program:
    """A program with a boxed subroutine (exercises body rewriting)."""

    def body(qc, qs):
        qc.qnot(qs[0], controls=(qs[1], qs[2]))  # Toffoli: decomposable
        qc.hadamard(qs[1])
        return qs

    def circ(qc, qs):
        qc.nbox("step", 3, body, qs)
        return qs

    return Program.capture(circ, [qubit] * 3, name="boxed")


class TestRecorderMath:
    """Counters, histograms, and derived metrics."""

    def test_counters_and_histograms_accumulate(self):
        with obs.capture() as rec:
            obs.add("x")
            obs.add("x", 4)
            obs.observe("h", 2.0)
            obs.observe("h", 6.0)
        assert rec.counters["x"] == 5
        hist = rec.histograms["h"]
        assert (hist.count, hist.min, hist.max, hist.mean) == (2, 2.0, 6.0, 4.0)

    def test_cache_hit_rate_aggregates_cache_counters(self):
        rec = obs.Recorder()
        assert rec.cache_hit_rate() is None
        rec.counters["cache.a.hits"] = 3
        rec.counters["cache.a.misses"] = 1
        rec.counters["cache.b.hits"] = 2
        rec.counters["cache.b.misses"] = 2
        assert rec.cache_hit_rate() == pytest.approx(5 / 8)

    def test_span_totals_aggregate_by_path(self):
        with obs.capture() as rec:
            for _ in range(3):
                with obs.span("stage"):
                    pass
        totals = rec.span_totals()
        assert totals["stage"][0] == 3

    def test_capture_is_reentrant(self):
        with obs.capture() as outer:
            obs.add("outer.only")
            with obs.capture() as inner:
                obs.add("inner.only")
            obs.add("outer.only")
        assert "inner.only" not in outer.counters
        assert outer.counters["outer.only"] == 2
        assert inner.counters == {"inner.only": 1}
        assert not obs_core.ENABLED

    def test_capture_memory_records_high_water(self):
        with obs.capture(memory=True) as rec:
            _ = [0] * 50_000
        assert rec.peak_memory is not None
        assert rec.peak_memory > 50_000 * 8

    def test_registered_caches_report_deltas(self):
        program = _bell_program()
        with obs.capture() as rec:
            program.run(shots=8, seed=1)
        assert rec.counters.get("cache.compiled_stream.misses") == 1
        # Running the same circuit again inside a fresh session is a
        # pure memo hit.
        with obs.capture() as rec2:
            program.run(shots=8, seed=1)
        assert rec2.counters.get("cache.compiled_stream.hits") == 1
        assert "cache.compiled_stream.misses" not in rec2.counters


class TestSpanNesting:
    """Span paths reflect lexical nesting, across threads and stages."""

    def test_paths_join_with_slash(self):
        with obs.capture() as rec:
            with obs.span("a"):
                with obs.span("b"):
                    pass
        assert [s.path for s in rec.spans] == ["a/b", "a"]

    def test_pipeline_stages_nest_under_run(self):
        program = _bell_program().transform("binary").optimize()
        with obs.capture() as rec:
            program.run(shots=16, seed=3)
        names = {s.name for s in rec.spans}
        assert {"capture", "transform", "optimize", "compile",
                "run.statevector"} <= names
        # Lazy generation happens inside run, so every stage span's
        # path is rooted at the run span.
        for record in rec.spans:
            assert record.path.startswith("run.statevector")

    def test_thread_backed_iteration_nests_under_consumer_span(self):
        program = _bell_program()
        with obs.capture() as rec:
            with obs.span("outer"):
                gates = list(program.stream().gates())
        assert gates
        by_name = {s.name: s for s in rec.spans}
        assert by_name["stream"].path == "outer/stream"
        # The stream span was recorded on the producer thread, the outer
        # span on this one -- nesting survived the thread hop.
        assert by_name["stream"].tid != by_name["outer"].tid
        assert by_name["outer"].tid == threading.get_ident()

    def test_stream_transformer_stages_report_body_counters(self):
        program = _boxed_program()
        with obs.capture() as rec:
            program.stream("binary").count()
        assert rec.counters.get("transform.bodies.rewritten", 0) >= 1

    def test_stream_optimizer_reports_body_counters(self):
        program = _boxed_program()
        with obs.capture() as rec:
            program.stream().optimize().count()
        bodies = (rec.counters.get("optimize.bodies.rewritten", 0)
                  + rec.counters.get("optimize.bodies.reused", 0))
        assert bodies >= 1

    def test_kernel_class_histogram_counts_every_gate(self):
        program = _bell_program()
        with obs.capture() as rec:
            program.run(shots=4, seed=0)
        # H is dense, the controlled-not dispatches as a permutation.
        assert rec.counters.get("sim.kernel.dense", 0) >= 1
        assert rec.counters.get("sim.kernel.permute", 0) >= 1
        assert rec.counters.get("sim.kernel.controlled", 0) >= 1

    def test_optimizer_pass_rewrite_counters(self):
        def cancels(qc, a):
            qc.hadamard(a)
            qc.hadamard(a)
            return a

        program = Program.capture(cancels, qubit).optimize()
        with obs.capture() as rec:
            assert program.total_gates() == 0
            rewrites = [k for k in rec.counters
                        if k.startswith("optimize.pass.")
                        and k.endswith(".rewrites")]
            assert rewrites

    def test_retention_marks_observed(self):
        def circ(qc, a):
            qc.with_computed(
                lambda: qc.hadamard(a), lambda _: qc.gate_T(a)
            )
            return a

        with obs.capture() as rec:
            Program.capture(circ, qubit).stream().count()
        assert rec.counters.get("stream.retention.marks") == 1
        assert rec.histograms["stream.retention.buffered"].count == 1


class TestDisabledMode:
    """Off means off: identical results, no telemetry allocation."""

    def test_results_bit_identical_with_and_without_capture(self):
        plain = _bell_program().run(shots=256, seed=42).counts
        with obs.capture():
            captured = _bell_program().run(shots=256, seed=42).counts
        after = _bell_program().run(shots=256, seed=42).counts
        assert plain == captured == after

    def test_disabled_span_is_shared_noop(self):
        handle = obs.span("anything", attr=1)
        assert handle is obs_core._NOOP_SPAN
        assert handle is obs.span("something.else")
        with handle as h:
            h.set(ignored=True)  # must not raise or record

    def test_gate_hot_path_allocates_nothing_in_obs(self):
        def many(qc, a):
            for _ in range(300):
                qc.hadamard(a)
            return a

        program = Program.capture(many, qubit)
        program.bcircuit  # build outside the measured window
        obs_file = obs_core.__file__
        tracemalloc.start()
        try:
            program.run(seed=0)
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        blocks = sum(
            stat.count
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename == obs_file
        )
        assert blocks == 0

    def test_counters_dropped_without_recorder(self):
        obs.add("ghost")
        obs.observe("ghost.h", 1.0)
        with obs.capture() as rec:
            pass
        assert "ghost" not in rec.counters
        assert "ghost.h" not in rec.histograms


class TestSinks:
    """Summary table, JSONL, and Chrome trace renderings."""

    @pytest.fixture()
    def session(self):
        program = _bell_program().transform("binary").optimize()
        with obs.capture() as rec:
            program.run(shots=32, seed=7)
        return rec

    def test_summary_mentions_spans_counters_and_hit_rate(self, session):
        text = obs.format_summary(session)
        assert "telemetry:" in text
        assert "sim.kernel" in text
        assert "cache hit rate" in text

    def test_jsonl_rows_parse_and_cover_all_kinds(self, session):
        buf = io.StringIO()
        obs.write_jsonl(session, buf)
        rows = [json.loads(line) for line in buf.getvalue().splitlines()]
        kinds = {row["type"] for row in rows}
        assert {"session", "span", "counter"} <= kinds
        assert rows[0]["type"] == "session"
        assert rows[0]["spans"] == len(session.spans)

    def test_chrome_trace_is_loadable_with_distinct_stages(self, session):
        buf = io.StringIO()
        obs.write_chrome_trace(session, buf)
        trace = json.loads(buf.getvalue())
        events = trace["traceEvents"]
        cats = {e["cat"] for e in events if e.get("ph") == "X"}
        assert {"capture", "transform", "optimize", "compile",
                "run.statevector"} <= cats
        for event in events:
            if event.get("ph") == "X":
                assert event["dur"] >= 0
                assert isinstance(event["ts"], (int, float))
        instants = [e for e in events if e.get("ph") == "I"]
        assert instants and "sim.kernel.permute" in instants[0]["args"]

    def test_dump_chrome_trace_accepts_path_and_handle(self, session,
                                                       tmp_path):
        target = tmp_path / "trace.json"
        obs.dump_chrome_trace(session, target)
        assert json.loads(target.read_text())["traceEvents"]
        buf = io.StringIO()
        obs.dump_chrome_trace(session, buf)
        assert json.loads(buf.getvalue())["traceEvents"]


class TestProgramSurface:
    """``Program.run(trace=...)`` and ``Program.report()``."""

    def test_run_trace_writes_chrome_json(self, tmp_path):
        target = tmp_path / "trace.json"
        result = _bell_program().run(shots=16, seed=5, trace=target)
        assert result.counts
        trace = json.loads(target.read_text())
        cats = {e["cat"] for e in trace["traceEvents"] if e.get("ph") == "X"}
        assert "run.statevector" in cats
        assert not obs_core.ENABLED

    def test_run_trace_matches_untraced_counts(self, tmp_path):
        traced = _bell_program().run(
            shots=64, seed=9, trace=tmp_path / "t.json"
        )
        plain = _bell_program().run(shots=64, seed=9)
        assert traced.counts == plain.counts

    def test_report_returns_profile_table(self):
        text = _bell_program().report(shots=8, seed=1)
        assert text.startswith("telemetry:")
        assert "run.statevector" in text


class TestCliSurface:
    """``--trace`` / ``--profile`` / ``-v`` on the algorithm CLIs."""

    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount",
                        "--trace", str(target)]) == 0
        capsys.readouterr()
        trace = json.loads(target.read_text())
        assert any(e.get("ph") == "X" for e in trace["traceEvents"])

    def test_verbose_summary_line_on_stderr(self, capsys):
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount",
                        "-v"]) == 0
        err = capsys.readouterr().err
        line = [ln for ln in err.splitlines() if ln.startswith("gates=")][-1]
        assert "depth=" in line
        assert "wall=" in line
        assert "cache_hit=" in line

    def test_profile_flag_prints_table_to_stderr(self, capsys):
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount",
                        "--profile"]) == 0
        assert "telemetry:" in capsys.readouterr().err

    def test_profile_file_writes_jsonl(self, tmp_path, capsys):
        target = tmp_path / "profile.jsonl"
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount",
                        "--profile", str(target)]) == 0
        capsys.readouterr()
        rows = [json.loads(line)
                for line in target.read_text().splitlines()]
        assert rows[0]["type"] == "session"

    def test_no_flags_leaves_telemetry_disabled(self, capsys):
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount"]) == 0
        capsys.readouterr()
        assert not obs_core.ENABLED
        assert obs.current_recorder() is None
