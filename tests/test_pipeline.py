"""Fused transformer pipeline tests.

The contract under test: ``transform_bcircuit_fused(bc, r1, ..., rk)``
produces the same circuit as folding the legacy one-rule-per-pass
transformer over the rules (up to ancilla numbering), while traversing
every subroutine body exactly once, reusing untouched subroutine objects,
and reporting dangling wires at ``finish``.
"""

from __future__ import annotations

import pytest

from repro import build, qubit
from repro.core.builder import Circ
from repro.core.errors import DanglingWiresError, DanglingWiresWarning
from repro.core.gates import Gate, NamedGate
from repro.transform import (
    BINARY,
    aggregate_gate_count,
    canonicalize_wires,
    decompose_generic,
    fixpoint_rule,
    to_binary,
    to_toffoli,
    transform_bcircuit,
    transform_bcircuit_fused,
)
from repro.transform.transformer import _legacy_transform_bcircuit

from test_io import random_bcircuit


# ---------------------------------------------------------------------------
# Rules used throughout: total on arbitrary gate streams (never raise).
# ---------------------------------------------------------------------------


def s_to_tt(qc: Circ, gate: Gate):
    """Rewrite S into T;T (and S* into T*;T*)."""
    if isinstance(gate, NamedGate) and gate.name == "S":
        half = NamedGate(
            "T", gate.targets, gate.controls, inverted=gate.inverted
        )
        qc._emit_raw(half)
        qc._emit_raw(half)
        return True
    return False


def h_to_xyx(qc: Circ, gate: Gate):
    """Rewrite H into X;Y;X (not unitarily meaningful; stresses fusion)."""
    if isinstance(gate, NamedGate) and gate.name == "H":
        for name in ("X", "Y", "X"):
            qc._emit_raw(NamedGate(name, gate.targets, gate.controls))
        return True
    return False


def _sequential(bc, *rules):
    for rule in rules:
        bc = _legacy_transform_bcircuit(bc, rule)
    return bc


class TestFusedEquivalence:
    """Satellite: randomized fused-vs-sequential equivalence."""

    @pytest.mark.parametrize("seed", range(25))
    def test_fused_matches_sequential_on_random_circuits(self, seed):
        """.transform(r1, r2) == sequential transform o transform, across
        the gate-constructor generators of test_io."""
        bc = random_bcircuit(seed)
        rules = (to_toffoli, s_to_tt)
        seq = _sequential(bc, *rules)
        fused = transform_bcircuit_fused(bc, *rules)
        assert canonicalize_wires(fused) == canonicalize_wires(seq)
        assert aggregate_gate_count(fused) == aggregate_gate_count(seq)
        fused.check()

    @pytest.mark.parametrize("seed", range(0, 25, 5))
    def test_three_rule_chain(self, seed):
        bc = random_bcircuit(seed)
        rules = (to_toffoli, h_to_xyx, s_to_tt)
        seq = _sequential(bc, *rules)
        fused = transform_bcircuit_fused(bc, *rules)
        assert canonicalize_wires(fused) == canonicalize_wires(seq)

    def test_single_rule_is_gate_for_gate_identical(self):
        """One fused stage reproduces the legacy pass exactly (same ids)."""
        bc = random_bcircuit(7)
        assert transform_bcircuit_fused(bc, to_toffoli) == (
            _legacy_transform_bcircuit(bc, to_toffoli)
        )

    def test_empty_chain_is_identity(self):
        bc = random_bcircuit(3)
        assert transform_bcircuit_fused(bc) is bc


def _boxed_circuit():
    """Two nested boxes: outer calls inner, main calls outer twice."""

    def inner(qc, a, b):
        qc.gate_S(a)
        qc.qnot(b, controls=a)
        return a, b

    def outer(qc, a, b, c):
        a, b = qc.box("inner", inner, a, b)
        qc.hadamard(c, controls=(a, b))  # 2 controls: toffoli rule fires
        return a, b, c

    def main_fn(qc, a, b, c):
        a, b, c = qc.box("outer", outer, a, b, c)
        a, b, c = qc.box("outer", outer, a, b, c)
        return a, b, c

    return build(main_fn, qubit, qubit, qubit)[0]


class TestSingleTraversal:
    """Acceptance: each subroutine body is traversed exactly once."""

    @staticmethod
    def _counting_rule(log: list, tag: str):
        def rule(qc: Circ, gate: Gate):
            log.append((tag, id(gate)))
            return False

        rule.__name__ = f"count_{tag}"
        return rule

    def test_each_body_traversed_once_by_each_stage(self):
        bc = _boxed_circuit()
        log: list = []
        rules = tuple(
            self._counting_rule(log, tag) for tag in ("r1", "r2", "r3")
        )
        transform_bcircuit_fused(bc, *rules)
        stored = [
            id(g) for g in bc.circuit.gates
        ] + [
            id(g)
            for sub in bc.namespace.values()
            for g in sub.circuit.gates
        ]
        # Every stored gate flowed through every rule exactly once: 3 rules
        # x 1 traversal, never 3 rules x 3 traversals.
        for tag in ("r1", "r2", "r3"):
            seen = [g for t, g in log if t == tag]
            assert sorted(seen) == sorted(stored)
            assert len(seen) == len(set(seen))
        assert len(log) == 3 * len(stored)

    def test_sequential_passes_traverse_k_times(self):
        """The cost model the fusion removes: k passes = k traversals."""
        bc = _boxed_circuit()
        log: list = []
        rule = self._counting_rule(log, "r")
        _sequential(bc, rule, rule, rule)
        stored = len(bc.circuit.gates) + sum(
            len(s.circuit.gates) for s in bc.namespace.values()
        )
        assert len(log) == 3 * stored  # same totals, but 3 full rewrites


class TestIdentityReuse:
    """Satellite bugfix: untouched subroutine bodies are reused."""

    def test_noop_rule_reuses_subroutines_and_width(self):
        bc = _boxed_circuit()
        bc.check()  # populate width caches
        inner = bc.namespace["inner"]
        assert inner._width is not None
        out = transform_bcircuit(bc, lambda qc, gate: False)
        assert out.namespace["inner"] is inner
        assert out.namespace["outer"] is bc.namespace["outer"]
        assert out.namespace["inner"]._width is not None  # cache preserved
        assert out == bc

    def test_changed_callee_invalidates_cached_width_of_reused_caller(self):
        bc = _boxed_circuit()
        bc.check()

        def touch_s(qc, gate):
            # Rewrites only the S gate, which lives in "inner": "outer"
            # is untouched and must be reused, but its transient width
            # depends on inner's, so the cache has to drop.
            if isinstance(gate, NamedGate) and gate.name == "S":
                with qc.ancilla():
                    qc._emit_raw(gate)
                return True
            return False

        original_width = bc.namespace["outer"]._width
        out = transform_bcircuit(bc, touch_s)
        assert out.namespace["inner"] is not bc.namespace["inner"]
        assert out.namespace["outer"] is bc.namespace["outer"]
        # The stale cache was dropped; if anything recomputed it in the
        # meantime it reflects the rewritten callee, never the
        # pre-transform namespace.
        cached = out.namespace["outer"]._width
        assert cached is None or cached == (
            out.namespace["outer"].circuit.check(out.namespace)
        )
        assert out.check() == original_width + 1  # ancilla widened the peak

    def test_rule_touching_only_main_reuses_all_subroutines(self):
        bc = _boxed_circuit()
        out = transform_bcircuit(bc, to_toffoli)  # 2-control H is in outer
        assert out.namespace["inner"] is bc.namespace["inner"]
        assert out.namespace["outer"] is not bc.namespace["outer"]


class TestStreamedWidthCaches:
    """Satellite bugfix: Subroutine.width caches cannot go stale through
    the streaming consumers.

    ``Subroutine._width`` is only trustworthy for the namespace state it
    was computed against; ``BCircuit.check`` re-invalidates before every
    materialized width computation.  The streaming resource consumer must
    apply the same discipline -- and a boxed function *re-entered with a
    different shape* mid-stream (which mints a new ``name#2`` namespace
    key) must never inherit the width of the earlier shape.
    """

    @staticmethod
    def _reentrant_program():
        from repro import Program

        def body(qc, qs):
            with qc.ancilla() as a:
                for q in qs:
                    qc.qnot(a, controls=q)
            return qs

        def circ(qc, qs):
            qc.box("f", body, qs[:2])  # narrow shape first: key "f"
            qc.box("f", body, qs)      # re-entered wider: key "f#2"
            return qs

        return Program.capture(circ, [qubit] * 5)

    def test_streamed_reentry_with_different_shape_recomputes_width(self):
        materialized = self._reentrant_program()
        streamed = self._reentrant_program().stream().resources()
        assert streamed["width"] == materialized.bcircuit.check()
        assert streamed["gate_counts"] == dict(materialized.count())
        # Both shape variants were minted as distinct namespace entries.
        assert streamed["subroutines"] == 2

    def test_streamed_replay_drops_stale_width_caches(self):
        """An in-place body edit after a check() must not leak the old
        cached width into a streamed resource count (exactly as
        BCircuit.check invalidates before recomputing)."""
        from repro import Program
        from repro.core.gates import Init, Term

        bc = _boxed_circuit()
        bc.check()  # populate every width cache
        assert bc.namespace["inner"]._width is not None
        # Widen "inner" in place: an extra ancilla alive across the body.
        inner = bc.namespace["inner"].circuit
        inner.gates.insert(0, Init(99, False))
        inner.gates.append(Term(99, False))
        streamed = Program.from_bcircuit(bc).stream().resources()["width"]
        assert streamed == bc.check()

    def test_streamed_rules_drop_stale_width_caches_of_reused_subs(self):
        """A rule-stream reuses untouched Subroutine objects; their
        pre-stream width caches must be re-validated, not trusted (the
        no-rules guard alone does not see the transform's namespace)."""
        from repro import Program
        from repro.core.gates import Init, Term

        bc = _boxed_circuit()
        bc.check()  # populate caches
        inner = bc.namespace["inner"].circuit
        inner.gates.insert(0, Init(99, False))
        inner.gates.append(Term(99, False))

        def noop(qc, gate):
            return False

        streamed = Program.from_bcircuit(bc).stream(noop).resources()
        assert streamed["width"] == bc.check()


class TestStreamTransformer:
    """The streaming rule chain matches the fused materializing pipeline."""

    @pytest.mark.parametrize("seed", range(0, 25, 5))
    def test_streamed_rules_match_fused(self, seed):
        from repro import Program

        bc = random_bcircuit(seed)
        rules = (to_toffoli, s_to_tt)
        fused = transform_bcircuit_fused(bc, *rules)
        streamed = Program.from_bcircuit(bc).stream(*rules)
        assert streamed.count() == aggregate_gate_count(fused)

    def test_streamed_chain_reuses_untouched_subroutines(self):
        from repro.core.stream import replay_bcircuit
        from repro.transform.pipeline import StreamTransformer
        from repro.core.stream import StreamConsumer

        bc = _boxed_circuit()
        bc.check()

        class _Probe(StreamConsumer):
            def finish(self, end):
                return end.namespace

        transformer = StreamTransformer((to_toffoli,), _Probe())
        namespace = replay_bcircuit(bc, transformer)
        # The 2-control H lives in "outer": rewritten.  "inner" is
        # untouched and the original object (cached width intact) reused.
        assert namespace["inner"] is bc.namespace["inner"]
        assert namespace["inner"]._width is not None
        assert namespace["outer"] is not bc.namespace["outer"]

    def test_streamed_chain_invalidates_reused_callers_of_changed_bodies(self):
        from repro.core.stream import StreamConsumer, replay_bcircuit
        from repro.transform.pipeline import StreamTransformer

        bc = _boxed_circuit()
        bc.check()
        original_outer_width = bc.namespace["outer"]._width

        def touch_s(qc, gate):
            if isinstance(gate, NamedGate) and gate.name == "S":
                with qc.ancilla():
                    qc._emit_raw(gate)
                return True
            return False

        class _Probe(StreamConsumer):
            def finish(self, end):
                return end.namespace

        namespace = replay_bcircuit(
            bc, StreamTransformer((touch_s,), _Probe())
        )
        # "inner" (holds the S) was rewritten; "outer" is reused but its
        # transient width depends on inner's, so the cache must be gone
        # or already consistent with the rewritten callee.
        assert namespace["inner"] is not bc.namespace["inner"]
        assert namespace["outer"] is bc.namespace["outer"]
        cached = namespace["outer"]._width
        assert cached is None or cached == namespace["outer"].circuit.check(
            namespace
        )
        assert namespace["outer"].circuit.check(namespace) == (
            original_outer_width + 1
        )


class TestFusedGateBases:
    """The fused toffoli+binary chain matches decompose_generic."""

    def test_binary_chain_matches_legacy_fixpoint(self):
        bc = _boxed_circuit()
        legacy = decompose_generic(BINARY, bc)
        fused = transform_bcircuit_fused(bc, to_toffoli, to_binary)
        assert aggregate_gate_count(fused) == aggregate_gate_count(legacy)
        assert canonicalize_wires(fused) == canonicalize_wires(legacy)

    def test_fixpoint_marker_round_trip(self):
        assert getattr(to_binary, "_fused_fixpoint", False)
        assert not getattr(to_toffoli, "_fused_fixpoint", False)
        rewrapped = fixpoint_rule(s_to_tt)
        assert getattr(rewrapped, "_fused_fixpoint", False)


class TestFinishDanglingWires:
    """Satellite bugfix: finish(outputs) reports leftover live wires."""

    @staticmethod
    def _leaky(qc, a, b):
        qc.hadamard(a)
        qc.hadamard(b)
        return a  # b stays live and undeclared

    def test_warn_mode_emits_structured_warning(self):
        with pytest.warns(DanglingWiresWarning) as record:
            bc, outs = build(self._leaky, qubit, qubit)
        assert record[0].category is DanglingWiresWarning
        warning = record[0].message
        assert warning.wires == ((1, "Q"),)
        # Back-compatible repackaging still happens.
        assert bc.circuit.out_arity == 2
        assert isinstance(outs, tuple) and len(outs) == 2

    def test_error_mode_raises(self):
        with pytest.raises(DanglingWiresError) as excinfo:
            build(self._leaky, qubit, qubit, on_extra="error")
        assert excinfo.value.wires == ((1, "Q"),)

    def test_ignore_mode_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bc, _ = build(self._leaky, qubit, qubit, on_extra="ignore")
        assert bc.circuit.out_arity == 2

    def test_clean_finish_never_warns(self):
        import warnings

        def clean(qc, a, b):
            qc.hadamard(a)
            return a, b

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            build(clean, qubit, qubit)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            build(self._leaky, qubit, qubit, on_extra="explode")
