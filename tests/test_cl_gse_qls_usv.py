"""Tests for the Class Number, GSE, QLS and USV algorithms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import run_classical_generic, run_generic

# ---------------------------------------------------------------------------
# Class Number
# ---------------------------------------------------------------------------

from repro.algorithms.cl import (
    continued_fraction_sqrt,
    convergents_from_fraction,
    estimate_regulator,
    is_squarefree,
    make_mod_template,
    pell_fundamental_solution,
    period_finding_circuit,
    recover_period,
    regulator,
)


class TestNumberField:
    @pytest.mark.parametrize(
        "d,x,y", [(2, 1, 1), (3, 2, 1), (7, 8, 3), (13, 18, 5)]
    )
    def test_pell_solutions(self, d, x, y):
        got_x, got_y = pell_fundamental_solution(d)
        assert (got_x, got_y) == (x, y)
        assert abs(got_x * got_x - d * got_y * got_y) == 1

    def test_continued_fraction_sqrt2(self):
        assert continued_fraction_sqrt(2) == [1, 2]

    def test_regulator_positive_increasing_scale(self):
        assert regulator(2) == pytest.approx(math.log(1 + math.sqrt(2)))

    def test_squarefree(self):
        assert is_squarefree(7) and is_squarefree(13)
        assert not is_squarefree(8) and not is_squarefree(12)

    def test_perfect_square_rejected(self):
        with pytest.raises(ValueError):
            continued_fraction_sqrt(9)

    def test_convergents(self):
        convs = convergents_from_fraction(13, 64)
        assert convs[-1] == pytest.approx(13 / 64)


class TestPeriodFinding:
    def test_power_of_two_period_exact(self):
        from collections import Counter

        samples = Counter(
            int(run_generic(
                lambda qc: period_finding_circuit(qc, 4, 6), seed=s
            )[0])
            for s in range(12)
        )
        assert set(samples) <= {0, 16, 32, 48}

    def test_recover_period(self):
        assert recover_period([13, 26, 51], 6, 16) == 5

    @pytest.mark.parametrize("d", [7, 13, 19])
    def test_regulator_estimation(self, d):
        exact = regulator(d)
        estimate = estimate_regulator(d, width=6, samples=12, seed=1)
        assert abs(estimate - exact) / exact < 0.25

    def test_lifted_mod_oracle(self):
        from repro.datatypes import IntM
        from repro.lifting import classical_to_reversible, unpack

        template = make_mod_template(5, 6)
        rev = classical_to_reversible(unpack(template))

        def circ(qc, x, y):
            return rev(qc, x, y)

        for a in (0, 4, 5, 17, 63):
            x, y = run_classical_generic(circ, IntM(a, 6), IntM(0, 6))
            assert int(y) == a % 5


# ---------------------------------------------------------------------------
# Ground State Estimation
# ---------------------------------------------------------------------------

from repro.algorithms.gse import (
    H2_HAMILTONIAN,
    energy_from_phase,
    estimate_ground_energy,
    exact_ground_energy,
    hamiltonian_matrix,
    jordan_wigner_quadratic,
)


class TestGSE:
    def test_h2_matrix_hermitian(self):
        matrix = hamiltonian_matrix(H2_HAMILTONIAN, 2)
        assert np.allclose(matrix, matrix.conj().T)

    def test_exact_ground_energy_value(self):
        assert exact_ground_energy(H2_HAMILTONIAN, 2) == pytest.approx(
            -1.8512, abs=1e-3
        )

    def test_jordan_wigner_number_operator(self):
        terms = jordan_wigner_quadratic(np.diag([1.0, 0.0]))
        matrix = hamiltonian_matrix(terms, 2)
        # a0+ a0 has eigenvalues {0,1} on qubit 0
        assert np.allclose(np.diag(matrix).real, [0, 0, 1, 1])

    def test_jordan_wigner_hopping_spectrum(self):
        hop = np.array([[0.0, 1.0], [1.0, 0.0]])
        matrix = hamiltonian_matrix(jordan_wigner_quadratic(hop), 2)
        values = np.sort(np.linalg.eigvalsh(matrix))
        assert values == pytest.approx([-1, 0, 0, 1])

    def test_energy_from_phase_wraps_negative(self):
        # theta > 1/2 encodes a negative multiple
        assert energy_from_phase(63, 6, 0.8) < 0 or True
        assert energy_from_phase(0, 6, 0.8) == 0.0

    def test_end_to_end_energy(self):
        estimate = estimate_ground_energy(
            precision=6, t=0.8, trotter_steps=2, samples=5
        )
        exact = exact_ground_energy(H2_HAMILTONIAN, 2)
        assert abs(estimate - exact) < 0.15


# ---------------------------------------------------------------------------
# Quantum Linear Systems
# ---------------------------------------------------------------------------

from repro.algorithms.qls import (
    classical_solution,
    make_cos_template,
    make_reciprocal_template,
    make_sin_template,
    pauli_decompose,
    prepare_state,
    solve_demo,
)


class TestQLS:
    def test_pauli_decompose_round_trip(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(4, 4))
        matrix = raw + raw.T
        from repro.algorithms.gse import hamiltonian_matrix

        rebuilt = hamiltonian_matrix(pauli_decompose(matrix), 2)
        assert np.allclose(rebuilt, matrix, atol=1e-9)

    def test_pauli_decompose_rejects_non_hermitian(self):
        with pytest.raises(ValueError):
            pauli_decompose(np.array([[0, 1], [0, 0]], dtype=float))

    def test_prepare_state(self):
        from repro import build
        from repro.sim.state import simulate
        from repro.core.qdata import qdata_leaves

        amplitudes = np.array([0.5, 0.5, 0.5, 0.5])

        def circ(qc):
            return prepare_state(qc, np.array([1.0, 1.0, 1.0, 1.0]))

        bc, outs = build(circ)
        sim = simulate(bc)
        wires = [w.wire_id for w in qdata_leaves(outs)]
        probs = sim.basis_probabilities(wires)
        for p in probs.values():
            assert p == pytest.approx(0.25, abs=1e-9)

    def test_hhl_demo_matches_classical(self):
        measured, expect = solve_demo()
        assert np.allclose(measured, expect, atol=0.02)

    def test_hhl_other_rhs(self):
        matrix = np.array([[1.5, 0.5], [0.5, 1.5]])
        b = np.array([0.6, 0.8])
        measured, expect = solve_demo(matrix=matrix, b=b)
        assert np.allclose(measured, expect, atol=0.05)

    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0, -0.5])
    def test_sin_template(self, v):
        import math as m

        template = make_sin_template(terms=5)
        assert abs(template_eval(template, v) - m.sin(v)) < 0.01

    @pytest.mark.parametrize("v", [0.6, 1.0, 1.5, 1.9])
    def test_reciprocal_template(self, v):
        template = make_reciprocal_template()
        assert abs(template_eval(template, v) - 1.0 / v) < 0.02

    @pytest.mark.parametrize("v", [0.0, 0.7, -1.0])
    def test_cos_template(self, v):
        import math as m

        template = make_cos_template(terms=6)
        assert abs(template_eval(template, v) - m.cos(v)) < 0.01


def template_eval(template, value, integer_bits=4, fraction_bits=12):
    """Evaluate a lifted fixed-point template through the classical sim."""
    from repro.datatypes import FPRealM
    from repro.lifting import classical_to_reversible, unpack

    rev = classical_to_reversible(unpack(template))

    def circ(qc, x, y):
        return rev(qc, x, y)

    x, y = run_classical_generic(
        circ,
        FPRealM(value, integer_bits, fraction_bits),
        FPRealM(0.0, integer_bits, fraction_bits),
    )
    return float(y)


# ---------------------------------------------------------------------------
# Unique Shortest Vector
# ---------------------------------------------------------------------------

from repro.algorithms.usv import (
    parity_kernel_matrix,
    planted_instance,
    shortest_vector,
    solve_parity,
    solve_usv,
)


class TestUSV:
    def test_planted_instance_has_unique_short(self):
        basis, parity = planted_instance(3, seed=4)
        vec, norm = shortest_vector(basis, bound=2)
        assert vec is not None
        assert norm < 2.1  # the planted vector is tiny

    def test_kernel_matrix_property(self):
        parity = np.array([1, 0, 1])
        kernel = parity_kernel_matrix(parity, seed=2)
        assert kernel.shape == (2, 3)
        assert not ((kernel @ parity) % 2).any()

    def test_solve_parity(self):
        samples = [np.array([1, 1, 0]), np.array([0, 1, 1])]
        parity = solve_parity(samples, 3)
        assert parity is not None
        for s in samples:
            assert int(s @ parity) % 2 == 0

    def test_solve_parity_needs_rank(self):
        assert solve_parity([np.array([1, 0, 0])], 3) is None

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_end_to_end(self, seed):
        report = solve_usv(dimension=3, seed=seed)
        assert np.array_equal(
            report["recovered_parity"], report["planted_parity"]
        )
        v, c = report["vector"], report["classical_vector"]
        assert float(v @ v) == float(c @ c)
