"""Tests for the Binary Welded Tree algorithm and the QCL comparison."""

import numpy as np
import pytest

from repro import aggregate_gate_count, build, total_logical_gates
from repro.core.qdata import qdata_leaves
from repro.sim import run_classical_generic
from repro.sim.state import simulate
from repro.transform import TOFFOLI, decompose_generic
from repro.algorithms.bwt import (
    all_nodes,
    bwt_circuit,
    bwt_oracle,
    bwt_oracle_template,
    check_graph,
    entrance_label,
    exit_label,
    neighbor,
    qrwbwt,
    register_size,
    timestep,
    unpack_label,
)
from repro.baselines import qcl_bwt_circuit


class TestGraph:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_structure(self, n):
        check_graph(n)

    def test_entrance_exit_distinct_sides(self):
        n = 3
        s_in, p_in = unpack_label(entrance_label(n), n)
        s_out, p_out = unpack_label(exit_label(n), n)
        assert (s_in, p_in) == (0, 1)
        assert (s_out, p_out) == (1, 1)

    def test_colors_partition_edges(self):
        n = 3
        for a in all_nodes(n):
            seen = set()
            for c in range(4):
                b = neighbor(a, c, n)
                if b is not None:
                    assert b not in seen  # distinct neighbours per colour
                    seen.add(b)

    def test_weld_is_a_cycle(self):
        """The two matchings together form a cycle through all leaves."""
        n = 3
        leaves0 = [(0, (1 << n) + i) for i in range(1 << n)]
        start = leaves0[0]
        from repro.algorithms.bwt.graph import pack_label

        colors = [c for c in range(4) if (c >> 1) == n % 2]
        node = pack_label(*start, n)
        visited = {node}
        color_index = 0
        while True:
            node2 = neighbor(node, colors[color_index], n)
            assert node2 is not None
            if node2 == pack_label(*start, n):
                break
            visited.add(node2)
            node = node2
            color_index ^= 1
        assert len(visited) == 2 * (1 << n)  # all leaves on one cycle


@pytest.mark.parametrize("oracle", [bwt_oracle, bwt_oracle_template],
                         ids=["orthodox", "template"])
class TestOracles:
    def test_matches_classical_spec(self, oracle):
        n = 2
        m = register_size(n)
        for label in all_nodes(n):
            bits = [bool((label >> (m - 1 - i)) & 1) for i in range(m)]
            for color in range(4):
                def circ(qc, a):
                    b = [qc.qinit_qubit(False) for _ in range(m)]
                    r = qc.qinit_qubit(False)
                    oracle(qc, a, b, r, color, n)
                    return a, b, r

                a, b, r = run_classical_generic(circ, bits)
                value = sum(int(v) << (m - 1 - i) for i, v in enumerate(b))
                expected = neighbor(label, color, n)
                if expected is None:
                    assert r is True and value == 0
                else:
                    assert r is False and value == expected
                assert a == bits

    def test_oracle_self_cleanup(self, oracle):
        """Oracle twice == identity (it XORs into b and r)."""
        n = 2
        m = register_size(n)

        def circ(qc, a):
            b = [qc.qinit_qubit(False) for _ in range(m)]
            r = qc.qinit_qubit(False)
            oracle(qc, a, b, r, 0, n)
            oracle(qc, a, b, r, 0, n)
            qc.qterm(b)      # must be clean again
            qc.qterm(r)
            return a

        label = entrance_label(n)
        bits = [bool((label >> (m - 1 - i)) & 1) for i in range(m)]
        assert run_classical_generic(circ, bits) == bits


class TestTimestep:
    def test_figure1_gate_shapes(self):
        """W / controlled-nots / exp(-iZt) / mirror, as in Figure 1."""
        n = 2
        m = register_size(n)

        def circ(qc):
            a = [qc.qinit_qubit(False) for _ in range(m)]
            b = [qc.qinit_qubit(False) for _ in range(m)]
            r = qc.qinit_qubit(False)
            timestep(qc, a, b, r, 0.3)
            return a, b, r

        bc, _ = build(circ)
        counts = aggregate_gate_count(bc)
        assert counts[("W", 0, 0)] == 2 * m
        assert counts[("exp(-i%Z)", 0, 1)] == 1  # negatively controlled
        assert counts[("Not", 1, 1)] == 2 * m  # the (+a, -b) cascades

    def test_timestep_invalid_flag_gates_evolution(self):
        """With r=1 (no edge) the timestep must be the identity."""

        def circ(flag):
            def inner(qc):
                m = register_size(2)
                a = [qc.qinit_qubit(i == 3) for i in range(m)]
                b = [qc.qinit_qubit(False) for _ in range(m)]
                r = qc.qinit_qubit(flag)
                timestep(qc, a, b, r, 0.7)
                return a, b, r

            return inner

        bc1, outs = build(circ(True))
        sim = simulate(bc1)
        # r=1 (no edge): the rotation is gated off, so the W/cascade
        # conjugation cancels exactly and the basis state is unchanged.
        probs = sim.basis_probabilities(
            [w.wire_id for w in qdata_leaves(outs)]
        )
        assert len(probs) == 1
        # r=0: the evolution fires; the state stays normalized (and the
        # scoped ancilla's termination assertion passed inside simulate).
        bc0, outs0 = build(circ(False))
        sim0 = simulate(bc0)
        probs0 = sim0.basis_probabilities(
            [w.wire_id for w in qdata_leaves(outs0)]
        )
        assert sum(probs0.values()) == pytest.approx(1.0, abs=1e-9)


class TestWalkPhysics:
    def test_walk_stays_on_valid_labels(self):
        """The evolution never creates amplitude outside the graph.

        (pos = 0 encodes "no node"; the oracle's validity flag gates all
        evolution, so those labels must stay unpopulated.)
        """
        n = 1
        m = register_size(n)

        def circ(qc):
            return qrwbwt(qc, n, s=2, t=0.6)

        bc, outs = build(circ)
        # Replace the final measurement by direct state inspection.
        bc.circuit.gates = [
            g for g in bc.circuit.gates
            if type(g).__name__ != "Measure"
        ]
        bc.circuit.outputs = tuple(
            (w, "Q") for (w, _) in bc.circuit.outputs
        )
        sim = simulate(bc)
        wires = [w for w, _ in bc.circuit.outputs]
        probs = sim.basis_probabilities(wires)
        total = 0.0
        for outcome, p in probs.items():
            label = sum(int(b) << (m - 1 - i) for i, b in enumerate(outcome))
            _, pos = unpack_label(label, n)
            assert pos != 0 or p < 1e-9
            total += p
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_zero_steps_stays_at_entrance(self):
        n = 2
        m = register_size(n)

        def circ(qc):
            return qrwbwt(qc, n, s=0, t=0.5)

        bc, _ = build(circ)
        bc.circuit.gates = [
            g for g in bc.circuit.gates
            if type(g).__name__ != "Measure"
        ]
        bc.circuit.outputs = tuple(
            (w, "Q") for (w, _) in bc.circuit.outputs
        )
        sim = simulate(bc)
        wires = [w for w, _ in bc.circuit.outputs]
        probs = sim.basis_probabilities(wires)
        entrance_bits = tuple(
            (entrance_label(n) >> (m - 1 - i)) & 1 for i in range(m)
        )
        assert probs[entrance_bits] == pytest.approx(1.0, abs=1e-12)

    def test_walk_spreads_from_entrance(self):
        n = 1

        def circ(qc):
            return qrwbwt(qc, n, s=3, t=0.8)

        bc, _ = build(circ)
        bc.circuit.gates = [
            g for g in bc.circuit.gates
            if type(g).__name__ != "Measure"
        ]
        bc.circuit.outputs = tuple(
            (w, "Q") for (w, _) in bc.circuit.outputs
        )
        sim = simulate(bc)
        wires = [w for w, _ in bc.circuit.outputs]
        probs = sim.basis_probabilities(wires)
        m = register_size(n)
        entrance_bits = tuple(
            (entrance_label(n) >> (m - 1 - i)) & 1 for i in range(m)
        )
        # amplitude has left the entrance
        assert probs.get(entrance_bits, 0.0) < 0.9
        exit_bits = tuple(
            (exit_label(n) >> (m - 1 - i)) & 1 for i in range(m)
        )
        assert probs.get(exit_bits, 0.0) > 0.01


class TestComparisonTable:
    """The Section 6 table's orderings (T4)."""

    @pytest.fixture(scope="class")
    def rows(self):
        n, s, t = 4, 1, 0.1

        def row(bc):
            bc = decompose_generic(TOFFOLI, bc)
            counts = aggregate_gate_count(bc)
            return {
                "total": total_logical_gates(counts),
                "qubits": bc.check(),
                "w": counts[("W", 0, 0)],
                "e": sum(
                    v for (k, _, _), v in counts.items()
                    if k.startswith("exp")
                ),
                "meas": counts.get(("Meas", 0, 0), 0),
                "term": sum(
                    v for (k, _, _), v in counts.items()
                    if k.startswith("Term")
                ),
            }

        return {
            "qcl": row(qcl_bwt_circuit(n, s, t)),
            "orthodox": row(bwt_circuit(n, s, t, "orthodox")),
            "template": row(bwt_circuit(n, s, t, "template")),
        }

    def test_qcl_much_larger_than_orthodox(self, rows):
        assert rows["qcl"]["total"] > 5 * rows["orthodox"]["total"]

    def test_template_between(self, rows):
        assert (
            rows["orthodox"]["total"]
            < rows["template"]["total"]
            < rows["qcl"]["total"]
        )

    def test_w_and_e_rows_identical(self, rows):
        assert rows["qcl"]["w"] == rows["orthodox"]["w"] == rows["template"]["w"] == 48
        assert rows["qcl"]["e"] == rows["orthodox"]["e"] == rows["template"]["e"] == 4

    def test_qubit_ordering(self, rows):
        assert rows["orthodox"]["qubits"] < rows["qcl"]["qubits"]
        assert rows["qcl"]["qubits"] < rows["template"]["qubits"]

    def test_qcl_never_terminates_or_measures(self, rows):
        assert rows["qcl"]["term"] == 0
        assert rows["qcl"]["meas"] == 0
        assert rows["orthodox"]["meas"] == 6
