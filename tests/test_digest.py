"""Structural Program digests and the digest-keyed compile memo.

Two contracts:

* :meth:`repro.program.Program.digest` is a stable content address --
  equal pipelines (same registered capture, same shapes, same
  transform/optimize chain) digest equal *without building*, and any
  semantic difference (stage, parameter, rule chain) separates them.
* :func:`repro.transform.inline.compile_flat` shares one compiled
  stream across structurally equal Programs when handed the digest --
  the regression for the old behaviour where the memo lived on the
  BCircuit instance only, so equal circuits compiled once *each*.
"""

from __future__ import annotations

import importlib

import pytest

from repro import Program, obs, qubit, register_capture

# repro.transform re-exports the inline() *function*; we want the module.
inline = importlib.import_module("repro.transform.inline")


@register_capture(name="tests.digest.bell")
def _bell(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return qc.measure((a, b))


def _bell_program(name: str = "bell") -> Program:
    return Program.capture(_bell, qubit, qubit, name=name)


def _unregistered_program(name: str = "anon") -> Program:
    def circ(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return qc.measure((a, b))

    return Program.capture(circ, qubit, qubit, name=name)


class TestLineageDigests:
    """Registered captures digest from lineage, without building."""

    def test_equal_pipelines_digest_equal_without_building(self):
        p1 = _bell_program("a").transform("binary").optimize()
        p2 = _bell_program("b").transform("binary").optimize()
        assert p1.digest() == p2.digest()
        # The whole point: no circuit was generated to compute that.
        assert p1._cache is None and p2._cache is None

    def test_every_stage_separates_the_digest(self):
        base = _bell_program()
        seen = {base.digest()}
        for derived in (
            base.transform("binary"),
            base.transform("toffoli"),
            base.optimize(),
            base.optimize("cancel"),
            base.inverse(),
            base.controlled(1),
        ):
            digest = derived.digest()
            assert digest not in seen, derived.name
            seen.add(digest)

    def test_digest_is_cached_and_stable(self):
        program = _bell_program()
        assert program.digest() == program.digest()
        built = program.bcircuit  # building must not change the address
        assert built is not None
        assert program.digest() == _bell_program().digest()

    def test_register_capture_rejects_name_collision(self):
        def other(qc, a):  # pragma: no cover - never called
            return a

        with pytest.raises(ValueError, match="already registered"):
            register_capture(other, name="tests.digest.bell")


class TestStructureDigests:
    """Unregistered captures fall back to hashing the built circuit."""

    def test_equal_circuits_digest_equal(self):
        assert (_unregistered_program("x").digest()
                == _unregistered_program("y").digest())

    def test_structure_and_lineage_domains_never_collide(self):
        # Same underlying circuit, one address per derivation domain --
        # the domain prefix keeps hash inputs disjoint by construction.
        assert (_bell_program().digest()
                != _unregistered_program().digest())


class TestDigestKeyedCompileMemo:
    """Equal Programs share one compiled stream (the satellite fix)."""

    def test_equal_programs_compile_once(self):
        inline._DIGEST_POOL.clear()
        p1, p2 = _bell_program("a"), _bell_program("b")
        with obs.capture() as rec:
            c1 = p1.compiled()
            c2 = p2.compiled()
        assert rec.counters["cache.compiled_stream.misses"] == 1
        assert rec.counters["cache.compiled_digest.hits"] == 1
        assert c1 is c2

    def test_instance_memo_still_wins_for_repeat_compiles(self):
        program = _bell_program()
        with obs.capture() as rec:
            first = program.compiled()
            second = program.compiled()
        assert first is second
        assert rec.counters.get("cache.compiled_stream.hits", 0) >= 1

    def test_run_reuses_the_pooled_stream(self):
        inline._DIGEST_POOL.clear()
        p1, p2 = _bell_program("a"), _bell_program("b")
        with obs.capture() as rec:
            r1 = p1.run(shots=8, seed=3)
            r2 = p2.run(shots=8, seed=3)
        assert r1.counts == r2.counts
        assert rec.counters["cache.compiled_stream.misses"] == 1

    def test_pool_is_bounded(self):
        inline._DIGEST_POOL.clear()
        for i in range(inline._DIGEST_POOL_MAX + 10):
            bc = _unregistered_program(f"p{i}").bcircuit
            inline.compile_flat(bc, digest=f"test:bound:{i}")
        assert len(inline._DIGEST_POOL) <= inline._DIGEST_POOL_MAX
        inline._DIGEST_POOL.clear()
