"""Tests for the Circ builder: emission, checks, blocks, reversal, boxes."""

import pytest

from repro import Circ, build, neg, qubit
from repro.core.circuit import Circuit
from repro.core.errors import (
    BoxError,
    CloningError,
    DeadWireError,
    DynamicLiftingError,
    ScopeError,
    ShapeMismatchError,
    WireTypeError,
)
from repro.core.gates import BoxCall, Comment, Init, NamedGate, Term
from repro.core.qdata import bit
from repro.core.wires import Bit, Qubit


def _gates(fn, *shapes):
    bc, _ = build(fn, *shapes)
    return bc.circuit.gates


class TestRuntimeChecks:
    def test_no_cloning_same_gate(self):
        def bad(qc, a):
            qc.named_gate("swap", a, a)

        with pytest.raises(CloningError):
            build(bad, qubit)

    def test_control_equal_to_target(self):
        def bad(qc, a):
            qc.qnot(a, controls=a)

        with pytest.raises(CloningError):
            build(bad, qubit)

    def test_dead_wire_use(self):
        def bad(qc, a):
            qc.qterm(a)
            qc.hadamard(a)

        with pytest.raises(DeadWireError):
            build(bad, qubit)

    def test_measure_then_gate_is_type_error(self):
        def bad(qc, a):
            qc.measure(a)
            qc.hadamard(a)

        with pytest.raises(WireTypeError):
            build(bad, qubit)

    def test_measure_under_controls_rejected(self):
        def bad(qc, a, b):
            with qc.controls(b):
                qc.measure(a)

        with pytest.raises(ScopeError):
            build(bad, qubit, qubit)

    def test_dynamic_lift_without_context(self):
        def bad(qc, a):
            b = qc.measure(a)
            qc.dynamic_lift(b)

        with pytest.raises(DynamicLiftingError):
            build(bad, qubit)


class TestBlocks:
    def test_controls_attach(self):
        def circ(qc, a, c):
            with qc.controls(c):
                qc.hadamard(a)
            return a, c

        gates = _gates(circ, qubit, qubit)
        assert gates[0].controls[0].wire == 1

    def test_negative_control(self):
        def circ(qc, a, c):
            qc.qnot(a, controls=neg(c))
            return a, c

        gates = _gates(circ, qubit, qubit)
        assert not gates[0].controls[0].positive

    def test_nested_controls_accumulate(self):
        def circ(qc, a, c1, c2):
            with qc.controls(c1):
                with qc.controls(c2):
                    qc.qnot(a)
            return a, c1, c2

        gates = _gates(circ, qubit, qubit, qubit)
        assert len(gates[0].controls) == 2

    def test_controls_skip_init_term(self):
        def circ(qc, a, c):
            with qc.controls(c):
                with qc.ancilla() as x:
                    qc.qnot(x, controls=a)
                    qc.qnot(x, controls=a)
            return a, c

        gates = _gates(circ, qubit, qubit)
        assert isinstance(gates[0], Init) and not hasattr(gates[0], "controls")
        assert isinstance(gates[-1], Term)
        # the inner nots carry both a and c
        assert len(gates[1].controls) == 2

    def test_ancilla_scope(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return a

        gates = _gates(circ, qubit)
        assert isinstance(gates[0], Init)
        assert isinstance(gates[-1], Term)

    def test_ancilla_init_structure(self):
        def circ(qc):
            with qc.ancilla_init([True, False]) as (x, y):
                qc.qnot(y, controls=x)
                qc.qnot(y, controls=x)
            return ()

        bc, _ = build(circ)
        terms = [g for g in bc.circuit.gates if isinstance(g, Term)]
        assert [t.value for t in terms] == [True, False]

    def test_with_computed_mirrors(self):
        def circ(qc, a, b):
            def compute():
                x = qc.qinit_qubit(False)
                qc.qnot(x, controls=a)
                return x

            qc.with_computed(compute, lambda x: qc.qnot(b, controls=x))
            return a, b

        gates = _gates(circ, qubit, qubit)
        kinds = [type(g).__name__ for g in gates]
        assert kinds == ["Init", "NamedGate", "NamedGate", "NamedGate", "Term"]

    def test_with_basis_change(self):
        def circ(qc, a):
            qc.with_basis_change(
                lambda: qc.hadamard(a), lambda: qc.gate_Z(a)
            )
            return a

        gates = _gates(circ, qubit)
        assert [g.name for g in gates] == ["H", "Z", "H"]


class TestShapeGenericOps:
    def test_qinit_structure(self):
        def circ(qc):
            return qc.qinit((True, [False, True]))

        bc, outs = build(circ)
        inits = [g for g in bc.circuit.gates if isinstance(g, Init)]
        assert [g.value for g in inits] == [True, False, True]

    def test_measure_preserves_shape(self):
        def circ(qc):
            data = qc.qinit((False, [True, False]))
            return qc.measure(data)

        bc, outs = build(circ)
        assert isinstance(outs, tuple)
        assert isinstance(outs[1], list)
        assert all(isinstance(leaf, Bit) for leaf in [outs[0], *outs[1]])

    def test_controlled_not_shape_mismatch(self):
        def bad(qc, a, b):
            qc.controlled_not([a], [b, b])

        with pytest.raises((ShapeMismatchError, CloningError)):
            build(bad, qubit, qubit)

    def test_cinit_and_cdiscard(self):
        def circ(qc):
            b = qc.cinit([True, False])
            qc.cdiscard(b)
            return ()

        bc, _ = build(circ)
        assert bc.check() == 2


class TestReverseEndo:
    def test_reverse_is_inverse_sequence(self):
        def body(qc, a, b):
            qc.hadamard(a)
            qc.gate_T(b)
            qc.qnot(b, controls=a)
            return a, b

        def circ(qc, a, b):
            qc.reverse_endo(body, a, b)
            return a, b

        gates = _gates(circ, qubit, qubit)
        names = [g.display_name() for g in gates]
        assert names == ["not", "T*", "H"]

    def test_reverse_with_ancillas(self):
        def body(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return a

        def circ(qc, a):
            qc.reverse_endo(body, a)
            return a

        gates = _gates(circ, qubit)
        assert isinstance(gates[0], Init)
        assert isinstance(gates[-1], Term)

    def test_double_reverse_identity(self):
        def body(qc, a):
            qc.gate_S(a)
            return a

        def circ(qc, a):
            qc.reverse_endo(lambda q, x: q.reverse_endo(body, x), a)
            return a

        gates = _gates(circ, qubit)
        assert [g.display_name() for g in gates] == ["S"]


class TestBoxes:
    @staticmethod
    def _mycirc(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return a, b

    def test_box_generated_once(self):
        def circ(qc, a, b):
            qc.box("f", self_mycirc, a, b)
            qc.box("f", self_mycirc, b, a)
            return a, b

        self_mycirc = self._mycirc
        bc, _ = build(circ, qubit, qubit)
        assert bc.subroutine_names() == ["f"]
        calls = [g for g in bc.circuit.gates if isinstance(g, BoxCall)]
        assert len(calls) == 2

    def test_box_distinct_shapes_get_distinct_keys(self):
        def body(qc, xs):
            for x in xs:
                qc.hadamard(x)
            return xs

        def circ(qc, a, b, c):
            qc.box("g", body, [a, b])
            qc.box("g", body, [a, b, c])
            return a, b, c

        bc, _ = build(circ, qubit, qubit, qubit)
        assert len(bc.namespace) == 2

    def test_box_with_fresh_outputs(self):
        def body(qc, a):
            fresh = qc.qinit_qubit(False)
            qc.qnot(fresh, controls=a)
            return a, fresh

        def circ(qc, a):
            a, fresh = qc.box("h", body, a)
            return a, fresh

        bc, outs = build(circ, qubit)
        assert bc.check() == 2
        assert isinstance(outs[1], Qubit)

    def test_box_must_return_all_live_wires(self):
        def body(qc, a):
            qc.qinit_qubit(False)  # leaked
            return a

        def circ(qc, a):
            qc.box("leaky", body, a)
            return a

        with pytest.raises(ScopeError):
            build(circ, qubit)

    def test_repeated_box_requires_endo(self):
        def body(qc, a):
            fresh = qc.qinit_qubit(False)
            qc.qterm(a)
            return fresh

        def circ(qc, a):
            return qc.nbox("reps", 3, body, a)

        with pytest.raises(BoxError):
            build(circ, qubit)

    def test_repetitions_recorded(self):
        def body(qc, a):
            qc.hadamard(a)
            return a

        def circ(qc, a):
            return qc.nbox("r", 5, body, a)

        bc, _ = build(circ, qubit)
        call = next(g for g in bc.circuit.gates if isinstance(g, BoxCall))
        assert call.repetitions == 5

    def test_nested_boxes(self):
        def inner(qc, a):
            qc.gate_T(a)
            return a

        def outer(qc, a):
            qc.box("inner", inner, a)
            qc.box("inner", inner, a)
            return a

        def circ(qc, a):
            qc.box("outer", outer, a)
            return a

        bc, _ = build(circ, qubit)
        assert set(bc.namespace) == {"inner", "outer"}
        assert bc.check() == 1


class TestComments:
    def test_comment_with_label_indexing(self):
        def circ(qc, a, b):
            qc.comment_with_label("ENTER", (a, b), ("x", "y"))
            return a, b

        gates = _gates(circ, qubit, qubit)
        assert isinstance(gates[0], Comment)
        assert gates[0].labels == ((0, "Q", "x"), (1, "Q", "y"))

    def test_multi_wire_label_gets_indices(self):
        def circ(qc):
            data = qc.qinit([False] * 3)
            qc.comment_with_label("L", data, "v")
            return data

        bc, _ = build(circ)
        comment = next(
            g for g in bc.circuit.gates if isinstance(g, Comment)
        )
        assert [lab for (_, _, lab) in comment.labels] == [
            "v[0]", "v[1]", "v[2]"
        ]


class TestCircuitCheck:
    def test_width_counts_ancillas(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                with qc.ancilla() as y:
                    qc.qnot(y, controls=(a, x)) if False else None
                    qc.qnot(y, controls=x)
                    qc.qnot(y, controls=x)
            return a

        bc, _ = build(circ, qubit)
        assert bc.check() == 3

    def test_output_mismatch_detected(self):
        circuit = Circuit(
            inputs=((0, "Q"),),
            gates=[],
            outputs=((0, "Q"), (1, "Q")),
        )
        from repro.core.errors import QuipperError

        with pytest.raises(QuipperError):
            circuit.check()
