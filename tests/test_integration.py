"""Cross-module integration tests.

Scenarios that exercise several subsystems together: lifting + reversal +
decomposition + simulation chains, boxed oracles under Grover, the CLI
entry points, and failure injection across module boundaries.
"""

import numpy as np
import pytest

from repro import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    build,
    decompose_generic,
    inline,
    qubit,
    reverse_bcircuit,
    total_gates,
)
from repro.core.errors import AssertionFailedError, IrreversibleError
from repro.datatypes import IntM, IntTF, qdint_shape
from repro.lifting import bool_xor, build_circuit, classical_to_reversible, unpack
from repro.sim import run_classical_generic, run_generic
from repro.sim.state import simulate
from repro.transform.count import count_circuit_flat


class TestLiftReverseDecomposeSimulate:
    """A lifted oracle survives the full transformation pipeline."""

    @staticmethod
    def _oracle_circuit():
        @build_circuit
        def majority(bits):
            a, b, c = bits
            return (a & b) | (a & c) | (b & c)

        rev = classical_to_reversible(unpack(majority))

        def circ(qc, bits, target):
            return rev(qc, bits, target)

        return build(circ, [qubit] * 3, qubit)[0]

    def test_semantics_preserved_through_toffoli(self):
        bc = self._oracle_circuit()
        toff = decompose_generic(TOFFOLI, bc)
        for value in range(8):
            bits = [bool((value >> i) & 1) for i in range(3)]
            expect = sum(bits) >= 2
            in_values = {
                w: b for (w, _), b in zip(bc.circuit.inputs, bits + [False])
            }
            sim = simulate(toff, in_values)
            target_wire = bc.circuit.inputs[3][0]
            probs = sim.basis_probabilities([target_wire])
            assert probs.get((int(expect),), 0) == pytest.approx(1.0)

    def test_reverse_of_decomposed_is_identity(self):
        bc = decompose_generic(BINARY, self._oracle_circuit())
        rev = reverse_bcircuit(bc)
        state = simulate(bc, {0: True, 1: True})
        for gate in rev.circuit.gates:
            state.execute(gate)
        wires = [w for w, _ in bc.circuit.inputs]
        probs = state.basis_probabilities(wires)
        assert probs[(1, 1, 0, 0)] == pytest.approx(1.0, abs=1e-9)

    def test_counting_invariant_under_inline_after_decompose(self):
        bc = decompose_generic(TOFFOLI, self._oracle_circuit())
        assert aggregate_gate_count(bc) == count_circuit_flat(
            inline(bc).circuit
        )


class TestBoxedArithmeticPipeline:
    def test_boxed_tf_arithmetic_counts_and_evaluates(self):
        """A boxed multiplier both counts hierarchically and evaluates."""
        from repro.algorithms.tf import o8_MUL

        def circ(qc, x, y):
            _, _, p1 = o8_MUL(qc, x, y)
            _, _, p2 = o8_MUL(qc, x, y)
            return x, y, p1, p2

        x, y, p1, p2 = run_classical_generic(
            circ, IntTF(5, 4), IntTF(9, 4)
        )
        assert p1 == (5 * 9) % 15 and p2 == p1

        bc, _ = build(
            circ, IntTF(0, 4).qshape_specimen(),
            IntTF(0, 4).qshape_specimen(),
        )
        # one stored o8 body, two calls: aggregate = 2x the body count
        from repro.core.circuit import BCircuit

        body = BCircuit(bc.namespace["o8"].circuit, bc.namespace)
        assert (
            total_gates(aggregate_gate_count(bc))
            == 2 * total_gates(aggregate_gate_count(body))
        )

    def test_deep_box_nesting_counts(self):
        def leaf(qc, a):
            qc.gate_T(a)
            return a

        def make_level(inner, name, reps):
            def level(qc, a):
                return qc.nbox(name, reps, inner, a)

            return level

        fn = leaf
        for depth in range(6):
            fn = make_level(fn, f"level{depth}", 10)

        bc, _ = build(lambda qc, a: fn(qc, a), qubit)
        counts = aggregate_gate_count(bc)
        assert counts[("T", 0, 0)] == 10 ** 6
        assert len(bc) < 20  # six tiny bodies


class TestFailureInjection:
    def test_dirty_ancilla_detected_through_box_and_inline(self):
        def body(qc, a):
            x = qc.qinit_qubit(False)
            qc.qnot(x, controls=a)  # dirty when a=1
            qc.qterm(x)
            return a

        def circ(qc, a):
            qc.box("bad", body, a)
            return a

        run_classical_generic(lambda qc: circ(qc, qc.qinit(False)))
        with pytest.raises(AssertionFailedError):
            run_classical_generic(lambda qc: circ(qc, qc.qinit(True)))

    def test_measure_inside_reversed_box_rejected(self):
        def body(qc, a):
            b = qc.measure(a)
            return b

        def circ(qc, a):
            qc.box("m", body, a)
            return ()

        bc, _ = build(lambda qc, a: (qc.box("m", body, a),), qubit)
        with pytest.raises(IrreversibleError):
            inline(reverse_bcircuit(bc))

    def test_statevector_catches_bad_assertion_after_decompose(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)  # left dirty when a=1
            return a

        bc, _ = build(circ, qubit)
        toff = decompose_generic(TOFFOLI, bc)
        simulate(toff, {0: False})
        with pytest.raises(AssertionFailedError):
            simulate(toff, {0: True})


class TestGroverOverLiftedOracle:
    def test_search_with_lifted_predicate(self):
        """Grover over a build_circuit-lifted predicate, end to end."""
        from repro.lib import (
            grover_iteration,
            phase_oracle_from_bit_oracle,
            prepare_uniform,
        )

        @build_circuit
        def is_target(bits):
            # target pattern 101
            a, b, c = bits
            return a & ~b & c

        oracle_fn = unpack(is_target)

        def circuit(qc):
            qs = [qc.qinit_qubit(False) for _ in range(3)]
            prepare_uniform(qc, qs)
            for _ in range(2):
                grover_iteration(
                    qc, qs,
                    lambda q, d: phase_oracle_from_bit_oracle(
                        q, lambda q2, d2: oracle_fn(q2, d2), d
                    ),
                )
            return qs

        hits = sum(
            run_generic(circuit, seed=s) == [True, False, True]
            for s in range(20)
        )
        assert hits >= 17


class TestCLIs:
    @pytest.mark.parametrize(
        "module,args",
        [
            ("repro.algorithms.bwt.main", ["-n", "3", "-f", "gatecount"]),
            ("repro.algorithms.bf.main", ["--rows", "2", "--cols", "2"]),
            ("repro.algorithms.cl.main", ["-d", "7", "--samples", "6"]),
            ("repro.algorithms.gse.main", ["--gatecount"]),
            ("repro.algorithms.qls.main", []),
            ("repro.algorithms.usv.main", ["--seed", "1"]),
        ],
    )
    def test_cli_runs(self, module, args, capsys):
        import importlib

        main = importlib.import_module(module).main
        assert main(args) == 0
        assert capsys.readouterr().out.strip()

    def test_tf_cli_matches_paper_invocation(self, capsys):
        from repro.algorithms.tf.main import main

        # the paper's: ./tf -s pow17 -l 4 -n 3 -r 2
        assert main(["-s", "pow17", "-l", "4", "-n", "3", "-r", "2"]) == 0
        out = capsys.readouterr().out
        assert "ENTER: o4_POW17" in out


class TestQShapeTriples:
    """The paper's QShape relationship: parameter <-> quantum <-> classical."""

    def test_intm_qdint_cint_cycle(self):
        def circ(qc):
            quantum = qc.qinit(IntM(13, 5))   # IntM -> QDInt
            classical = qc.measure(quantum)   # QDInt -> CInt
            return classical

        value = run_classical_generic(circ)
        assert value == 13 and value.length == 5

    def test_shape_structures_compose(self):
        def circ(qc):
            data = qc.qinit(
                {"pair": (True, False), "reg": IntM(3, 3), "flag": False}
            )
            return qc.measure(data)

        out = run_classical_generic(circ)
        assert out["pair"] == (True, False)
        assert out["reg"] == 3
        assert out["flag"] is False
