"""Differential QASM round-trip tests: export, re-import, prove equal.

Byte-stability (``export(import(export(P))) == export(P)``) pins the
dialect; the ``equiv`` backend then *proves* that what came back means
the same thing.  Three suites:

* every algorithm family's binary-base circuit survives the round trip
  byte-stably and provably equivalent, and its ``-O`` output is proven
  equivalent to the unoptimized circuit;
* randomized circuits over the QASM-exportable vocabulary
  (:func:`strategies.random_qasm_gates`) round-trip byte-stably and
  equivalent;
* a mutation harness: gate-drop / param-perturb / control-flip applied
  to the re-imported circuit must each yield a ``distinct`` verdict
  with a concrete basis-input witness -- if a mutant ever slips
  through, the checker is vacuous.
"""

from __future__ import annotations

import math
import random

import pytest
from strategies import random_qasm_gates

from repro.backends.equiv import EquivVerdict, decide_equivalence
from repro.core.circuit import BCircuit, Circuit
from repro.core.gates import Control, Measure, NamedGate
from repro.core.wires import CLASSICAL, QUANTUM
from repro.program import Program

#: Width cap for the statevector decider in these tests: the algorithm
#: circuits peak at 17 live qubits (bwt), well under the simulator's
#: own default cap but above the equiv backend's conservative default.
MAX_WIDTH = 20


def _program_from_gates(gates, n_qubits: int) -> Program:
    """Wrap a :func:`random_qasm_gates` gate list as a Program."""
    types = {w: QUANTUM for w in range(n_qubits)}
    for gate in gates:
        if isinstance(gate, Measure):
            types[gate.wire] = CLASSICAL
    inputs = tuple((w, QUANTUM) for w in range(n_qubits))
    outputs = tuple((w, types[w]) for w in range(n_qubits))
    return Program.from_bcircuit(
        BCircuit(Circuit(inputs, tuple(gates), outputs))
    )


# ---------------------------------------------------------------------------
# The seven algorithm families, at proof-sized parameters
# ---------------------------------------------------------------------------


def _bwt():
    from repro.algorithms.bwt.main import bwt_program

    return bwt_program(2, 1, 0.1)


def _bf():
    from repro.algorithms.bf.main import hex_oracle_program

    return hex_oracle_program(2, 1)


def _gse():
    from repro.algorithms.gse.main import gse_program

    return gse_program(2, 1.0, 1)


def _qls():
    from repro.algorithms.qls.main import hhl_program

    return hhl_program(precision=2)


def _tf():
    from repro.algorithms.tf.main import part_program

    return part_program("pow17", 1, 2, 1, "orthodox")


def _cl():
    from repro.algorithms.cl.regulator import period_finding_circuit

    return Program.capture(
        lambda qc: period_finding_circuit(qc, 5, 4), name="cl"
    )


def _usv():
    import numpy as np

    from repro.algorithms.usv.lattice import (
        parity_kernel_matrix,
        planted_instance,
    )
    from repro.algorithms.usv.usv import coset_sampling_circuit

    _, coeffs = planted_instance(3, 0)
    kernel = parity_kernel_matrix(np.mod(coeffs, 2), seed=0)
    return Program.from_bcircuit(coset_sampling_circuit(kernel), name="usv")


ALGORITHMS = {
    "bwt": _bwt,
    "bf": _bf,
    "gse": _gse,
    "qls": _qls,
    "tf": _tf,
    "cl": _cl,
    "usv": _usv,
}


@pytest.fixture(scope="module", params=sorted(ALGORITHMS))
def algorithm_program(request):
    """One algorithm circuit, decomposed to the binary base."""
    return ALGORITHMS[request.param]().transform("binary")


class TestAlgorithmRoundTrip:
    def test_round_trip_is_byte_stable_and_equivalent(
        self, algorithm_program
    ):
        p = algorithm_program
        text = p.qasm()
        q = Program.loads_qasm(text)
        assert q.qasm() == text
        verdict = p.equivalent_to(q, max_width=MAX_WIDTH)
        assert isinstance(verdict, EquivVerdict)
        assert verdict.verdict == "equivalent", verdict.reason
        assert verdict.decider in ("clifford", "statevector", "normal-form")

    def test_optimized_output_is_equivalent(self, algorithm_program):
        p = algorithm_program
        verdict = p.equivalent_to(p.optimize(), max_width=MAX_WIDTH)
        assert verdict.verdict == "equivalent", verdict.reason


# ---------------------------------------------------------------------------
# Randomized round trips
# ---------------------------------------------------------------------------


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(31000, 31012))
    def test_random_circuit_round_trips(self, seed):
        rng = random.Random(seed)
        p = _program_from_gates(random_qasm_gates(rng, 3), 3)
        text = p.qasm()
        q = Program.loads_qasm(text)
        assert q.qasm() == text
        verdict = p.equivalent_to(q)
        assert verdict.verdict == "equivalent", (
            f"seed {seed}: {verdict.reason} witness={verdict.witness}"
        )

    def test_verdict_records_cost(self):
        rng = random.Random(31000)
        p = _program_from_gates(random_qasm_gates(rng, 3), 3)
        verdict = p.equivalent_to(Program.loads_qasm(p.qasm()))
        assert verdict.cost["elapsed_s"] >= 0.0
        assert verdict.is_equivalent


# ---------------------------------------------------------------------------
# Mutation harness: every mutant must be caught, with a witness
# ---------------------------------------------------------------------------


def _mutation_candidates(gates) -> list[int]:
    """Indices of gates whose mutation observably changes the unitary.

    Excluded: classically guarded gates (the guard wire may never fire),
    uncontrolled ``phase`` (a pure global phase -- dropping one is
    *correctly* judged equivalent), and ``R(2pi/1)`` (the identity).
    """
    out = []
    for i, gate in enumerate(gates):
        if not isinstance(gate, NamedGate):
            continue
        if any(c.wire_type == CLASSICAL for c in gate.controls):
            continue
        if gate.name == "phase" and not gate.controls:
            continue
        if gate.name in ("R(2pi/%)", "rGate") and gate.param == 1.0:
            continue
        out.append(i)
    return out


def _mutants(gates, rng: random.Random):
    """Yield ``(kind, mutated_gate_list)`` for each mutation class."""
    candidates = _mutation_candidates(gates)

    drop = rng.choice(candidates)
    yield "gate-drop", gates[:drop] + gates[drop + 1:]

    parametrized = [
        i for i in candidates if gates[i].param is not None
    ]
    if parametrized:
        i = rng.choice(parametrized)
        g = gates[i]
        bump = 1.0 if g.name in ("R(2pi/%)", "rGate") else math.pi / 7
        mutated = NamedGate(
            g.name, g.targets, g.controls, inverted=g.inverted,
            param=g.param + bump,
        )
        yield "param-perturb", gates[:i] + [mutated] + gates[i + 1:]

    controlled = [i for i in candidates if gates[i].controls]
    if controlled:
        i = rng.choice(controlled)
        g = gates[i]
        flipped = (Control(g.controls[0].wire, not g.controls[0].positive,
                           g.controls[0].wire_type),) + g.controls[1:]
        mutated = NamedGate(
            g.name, g.targets, flipped, inverted=g.inverted, param=g.param
        )
        yield "control-flip", gates[:i] + [mutated] + gates[i + 1:]


class TestMutationHarness:
    @pytest.mark.parametrize("seed", range(47000, 47008))
    def test_every_mutant_is_distinct_with_witness(self, seed):
        rng = random.Random(seed)
        # measure_p=0 keeps the circuit unitary, so each mutation class
        # provably changes the operator (no mutation can hide behind a
        # collapsed measurement branch).
        gates = random_qasm_gates(rng, 3, measure_p=0.0)
        p = _program_from_gates(gates, 3)
        q = Program.loads_qasm(p.qasm())
        for kind, mutated in _mutants(gates, rng):
            mutant = _program_from_gates(mutated, 3)
            verdict = q.equivalent_to(mutant)
            assert verdict.verdict == "distinct", (
                f"seed {seed} {kind}: mutant judged {verdict.verdict} "
                f"({verdict.reason})"
            )
            assert verdict.witness is not None
            assert "in_values" in verdict.witness

    def test_dropping_a_global_phase_is_equivalent(self):
        """The negative control: phase-only edits must NOT be flagged."""
        gates = [
            NamedGate("H", (0,)),
            NamedGate("phase", (), (), param=0.7),
            NamedGate("H", (0,)),
        ]
        p = _program_from_gates(gates, 1)
        stripped = _program_from_gates([gates[0], gates[2]], 1)
        assert p.equivalent_to(stripped).is_equivalent


# ---------------------------------------------------------------------------
# decide_equivalence surface
# ---------------------------------------------------------------------------


class TestDecideEquivalence:
    def test_clifford_decider_handles_wide_clifford_pairs(self):
        n = 24  # past any statevector cap
        gates = [NamedGate("H", (w,)) for w in range(n)]
        gates += [
            NamedGate("not", (w + 1,), (Control(w),)) for w in range(n - 1)
        ]
        inputs = tuple((w, QUANTUM) for w in range(n))
        bc = BCircuit(Circuit(inputs, tuple(gates), inputs))
        verdict = decide_equivalence(bc, bc, max_width=4)
        assert verdict.verdict == "equivalent"
        assert verdict.decider == "clifford"

    def test_too_wide_non_clifford_pair_is_unknown(self):
        n = 24
        gates = tuple(NamedGate("T", (w,)) for w in range(n))
        other = tuple(NamedGate("T", (w,), inverted=True) for w in range(n))
        inputs = tuple((w, QUANTUM) for w in range(n))
        a = BCircuit(Circuit(inputs, gates, inputs))
        b = BCircuit(Circuit(inputs, other, inputs))
        verdict = decide_equivalence(a, b, max_width=4)
        assert verdict.verdict == "unknown"
        assert verdict.decider is None
