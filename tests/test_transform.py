"""Tests for counting, inlining, reversal, and decomposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BINARY,
    TOFFOLI,
    aggregate_gate_count,
    build,
    decompose_generic,
    inline,
    neg,
    qubit,
    reverse_bcircuit,
    total_gates,
    total_logical_gates,
)
from repro.core.gates import BoxCall, NamedGate
from repro.sim.state import simulate
from repro.transform.count import count_circuit_flat


def _random_circuit_fn(seed, n_qubits=4, n_gates=12, with_box=False):
    rng = np.random.default_rng(seed)

    def circ(qc, *qs):
        def emit(qc2, qs2):
            for _ in range(n_gates):
                kind = rng.integers(5)
                target = int(rng.integers(len(qs2)))
                other = int(rng.integers(len(qs2)))
                if kind == 0:
                    qc2.hadamard(qs2[target])
                elif kind == 1:
                    qc2.gate_T(qs2[target])
                elif kind == 2 and other != target:
                    qc2.qnot(qs2[target], controls=qs2[other])
                elif kind == 3 and other != target:
                    qc2.qnot(qs2[target], controls=neg(qs2[other]))
                elif kind == 4:
                    third = int(rng.integers(len(qs2)))
                    ctl = [
                        q for i, q in enumerate(qs2)
                        if i in {other, third} and i != target
                    ]
                    if ctl:
                        qc2.qnot(qs2[target], controls=ctl)
                    else:
                        qc2.gate_S(qs2[target])
            return qs2

        if with_box:
            return qc.box("body", emit, list(qs))
        return emit(qc, list(qs))

    return circ, n_qubits


class TestCounting:
    def test_aggregate_equals_flat_after_inline(self):
        for seed in range(5):
            fn, n = _random_circuit_fn(seed, with_box=True)
            bc, _ = build(fn, *([qubit] * n))
            flat = inline(bc)
            assert aggregate_gate_count(bc) == count_circuit_flat(
                flat.circuit
            )

    def test_repetition_multiplies(self):
        def body(qc, a):
            qc.hadamard(a)
            qc.gate_T(a)
            return a

        def circ(qc, a):
            return qc.nbox("r", 1000, body, a)

        bc, _ = build(circ, qubit)
        counts = aggregate_gate_count(bc)
        assert counts[("H", 0, 0)] == 1000
        assert counts[("T", 0, 0)] == 1000

    def test_trillion_scale_counting(self):
        def body(qc, a):
            qc.hadamard(a)
            return a

        def level2(qc, a):
            return qc.nbox("lvl1", 10 ** 7, body, a)

        def circ(qc, a):
            return qc.nbox("lvl2", 10 ** 7, level2, a)

        bc, _ = build(circ, qubit)
        counts = aggregate_gate_count(bc)
        assert counts[("H", 0, 0)] == 10 ** 14  # exact big-int arithmetic

    def test_inverted_box_counts(self):
        def body(qc, a):
            qc.gate_T(a)
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return a

        def circ(qc, a):
            qc.box("f", body, a)
            qc.reverse_endo(lambda q, x: q.box("f", body, x), a)
            return a

        bc, _ = build(circ, qubit)
        counts = aggregate_gate_count(bc)
        assert counts[("T", 0, 0)] == 1
        assert counts[("T*", 0, 0)] == 1
        assert counts[("Init0", 0, 0)] == 2
        assert counts[("Term0", 0, 0)] == 2

    def test_total_logical_excludes_init_term_meas(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            qc.measure(a)
            return ()

        # The measured bit is deliberately left out of the returned outputs.
        bc, _ = build(circ, qubit, on_extra="ignore")
        counts = aggregate_gate_count(bc)
        assert total_gates(counts) == 5
        assert total_logical_gates(counts) == 2

    def test_mixed_sign_controls_key(self):
        def circ(qc, a, b, c):
            qc.qnot(a, controls=(b, neg(c)))
            return a, b, c

        bc, _ = build(circ, qubit, qubit, qubit)
        assert aggregate_gate_count(bc)[("Not", 1, 1)] == 1

    def test_cgate_keys_invert_round_trip(self):
        # Regression for the duplicated CGate branch in _invert_key: the
        # compute key must gain the dagger suffix and the uncompute key
        # must lose it, round-tripping exactly.
        from repro.transform.count import _invert_key

        for fn in ("and", "or", "xor", "not", "eq"):
            compute = (f"CGate:{fn}", 0, 0)
            uncompute = (f"CGate:{fn}*", 0, 0)
            assert _invert_key(compute) == uncompute
            assert _invert_key(uncompute) == compute
            assert _invert_key(_invert_key(compute)) == compute

    def test_inverted_box_cgate_counts(self):
        # An inverted BoxCall over a body with classical logic must count
        # the body's CGates as uncomputations and vice versa.
        def body(qc, b1, b2):
            carry = qc.cgate_and(b1, b2)
            out = qc.cgate_xor(b1, b2)
            return b1, b2, carry, out

        from repro import bit

        def circ(qc, b1, b2):
            b1, b2, carry, out = qc.box("half-add", body, b1, b2)
            return b1, b2, carry, out

        bc, _ = build(circ, bit, bit)
        counts = aggregate_gate_count(bc)
        assert counts[("CGate:and", 0, 0)] == 1
        assert counts[("CGate:xor", 0, 0)] == 1

        rev = reverse_bcircuit(bc)
        rev_counts = aggregate_gate_count(rev)
        assert rev_counts[("CGate:and*", 0, 0)] == 1
        assert rev_counts[("CGate:xor*", 0, 0)] == 1
        # Reversing again restores the original keys.
        back = aggregate_gate_count(reverse_bcircuit(rev))
        assert back == counts


class TestInline:
    def test_inline_removes_boxes(self):
        fn, n = _random_circuit_fn(3, with_box=True)
        bc, _ = build(fn, *([qubit] * n))
        flat = inline(bc)
        assert not flat.namespace
        assert not any(
            isinstance(g, BoxCall) for g in flat.circuit.gates
        )
        flat.check()

    def test_inline_repetition(self):
        def body(qc, a):
            qc.hadamard(a)
            return a

        def circ(qc, a):
            return qc.nbox("r", 4, body, a)

        bc, _ = build(circ, qubit)
        flat = inline(bc)
        assert len(flat.circuit.gates) == 4

    def test_inline_controlled_box(self):
        def body(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return a

        def circ(qc, a, c):
            with qc.controls(c):
                qc.box("f", body, a)
            return a, c

        bc, _ = build(circ, qubit, qubit)
        flat = inline(bc)
        named = [g for g in flat.circuit.gates if isinstance(g, NamedGate)]
        # controls distributed over the nots, not the init/term
        assert all(len(g.controls) == 2 for g in named)
        flat.check()

    def test_inline_preserves_semantics(self):
        fn, n = _random_circuit_fn(7, with_box=True)
        bc, _ = build(fn, *([qubit] * n))
        flat = inline(bc)
        state_a = simulate(bc, {0: True, 2: True})
        state_b = simulate(flat, {0: True, 2: True})
        wires = [w for w, _ in bc.circuit.outputs]
        probs_a = state_a.basis_probabilities(wires)
        probs_b = state_b.basis_probabilities(wires)
        for key in set(probs_a) | set(probs_b):
            assert probs_a.get(key, 0) == pytest.approx(
                probs_b.get(key, 0), abs=1e-9
            )


class TestReverse:
    def test_reverse_involution(self):
        fn, n = _random_circuit_fn(11)
        bc, _ = build(fn, *([qubit] * n))
        double = reverse_bcircuit(reverse_bcircuit(bc))
        assert double.circuit.gates == bc.circuit.gates

    def test_reverse_is_semantic_inverse(self):
        fn, n = _random_circuit_fn(13)
        bc, _ = build(fn, *([qubit] * n))
        rev = reverse_bcircuit(bc)
        combined = build.__self__ if False else None
        # run forward then reverse: must return to the input basis state
        state = simulate(bc, {1: True})
        for gate in rev.circuit.gates:
            state.execute(gate)
        wires = [w for w, _ in bc.circuit.inputs]
        probs = state.basis_probabilities(wires)
        expected = tuple(int(w == 1) for w in wires)
        assert probs[expected] == pytest.approx(1.0, abs=1e-9)


class TestDecompose:
    @staticmethod
    def _multi_control_circ(qc, a, b, c, d):
        qc.qnot(d, controls=(a, b, c))
        qc.hadamard(d, controls=(a, neg(b)))
        qc.named_gate("swap", a, b, controls=c)
        qc.gate_W(a, b, controls=d)
        return a, b, c, d

    def test_toffoli_base_property(self):
        bc, _ = build(self._multi_control_circ, *([qubit] * 4))
        toff = decompose_generic(TOFFOLI, bc)
        toff.check()
        for gate in toff.circuit.gates:
            if isinstance(gate, NamedGate):
                limit = 2 if gate.name in ("not", "X") else 1
                quantum = [c for c in gate.controls if c.wire_type == "Q"]
                assert len(quantum) <= limit, gate

    def test_binary_base_property(self):
        bc, _ = build(self._multi_control_circ, *([qubit] * 4))
        binary = decompose_generic(BINARY, bc)
        binary.check()
        for gate in binary.circuit.gates:
            if isinstance(gate, NamedGate):
                quantum = [c for c in gate.controls if c.wire_type == "Q"]
                assert len(gate.targets) + len(quantum) <= 2, gate

    @pytest.mark.parametrize("base", [TOFFOLI, BINARY])
    def test_decomposition_preserves_semantics(self, base):
        bc, _ = build(self._multi_control_circ, *([qubit] * 4))
        decomposed = decompose_generic(base, bc)
        for inputs in [
            {}, {0: True}, {0: True, 1: True},
            {0: True, 1: True, 2: True}, {3: True},
            {0: True, 1: True, 2: True, 3: True},
        ]:
            state_a = simulate(bc, inputs)
            state_b = simulate(decomposed, inputs)
            wires = [w for w, _ in bc.circuit.outputs]
            vec_a = _vector(state_a, wires)
            vec_b = _vector(state_b, wires)
            # equal up to global phase
            overlap = abs(np.vdot(vec_a, vec_b))
            assert overlap == pytest.approx(1.0, abs=1e-9)

    def test_paper_timestep2_shape(self):
        """The V/V*/V Toffoli expansion of the paper's timestep2 figure."""

        def circ(qc, a, b, c):
            qc.qnot(c, controls=(a, b))
            return a, b, c

        bc, _ = build(circ, qubit, qubit, qubit)
        binary = decompose_generic(BINARY, bc)
        names = [
            g.display_name()
            for g in binary.circuit.gates
            if isinstance(g, NamedGate)
        ]
        assert names == ["V", "not", "V*", "not", "V"]


def _vector(state, wires):
    axes = [state.axes[w] for w in wires]
    arr = np.moveaxis(state.state, axes, range(len(axes)))
    return arr.reshape(-1)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10 ** 6))
def test_count_scaling_property(reps):
    def body(qc, a):
        qc.hadamard(a)
        qc.hadamard(a)
        return a

    def circ(qc, a):
        if reps == 0:
            return a
        return qc.nbox("k", reps, body, a)

    bc, _ = build(circ, qubit)
    assert total_gates(aggregate_gate_count(bc)) == 2 * reps
