"""Tests for hierarchical circuit-depth estimation."""

import pytest

from repro import build, qubit
from repro.transform.depth import circuit_depth, t_depth


def test_sequential_gates_add_depth():
    def circ(qc, a):
        qc.hadamard(a)
        qc.gate_T(a)
        qc.gate_S(a)
        return a

    bc, _ = build(circ, qubit)
    assert circuit_depth(bc) == 3


def test_parallel_gates_share_a_step():
    def circ(qc, a, b, c):
        qc.hadamard(a)
        qc.hadamard(b)
        qc.hadamard(c)
        return a, b, c

    bc, _ = build(circ, qubit, qubit, qubit)
    assert circuit_depth(bc) == 1


def test_controls_synchronize_wires():
    def circ(qc, a, b):
        qc.hadamard(a)       # step 1 on a
        qc.qnot(b, controls=a)  # step 2 on both
        qc.hadamard(a)       # step 3 on a
        qc.hadamard(b)       # step 3 on b (parallel)
        return a, b

    bc, _ = build(circ, qubit, qubit)
    assert circuit_depth(bc) == 3


def test_comments_are_free():
    def circ(qc, a):
        qc.comment("x")
        qc.hadamard(a)
        qc.comment("y")
        return a

    bc, _ = build(circ, qubit)
    assert circuit_depth(bc) == 1


def test_box_depth_multiplies_repetitions():
    def body(qc, a):
        qc.hadamard(a)
        qc.gate_T(a)
        return a

    def circ(qc, a):
        return qc.nbox("b", 1000, body, a)

    bc, _ = build(circ, qubit)
    assert circuit_depth(bc) == 2000


def test_trillion_scale_depth_is_cheap():
    def body(qc, a):
        qc.hadamard(a)
        return a

    def mid(qc, a):
        return qc.nbox("inner", 10 ** 7, body, a)

    def circ(qc, a):
        return qc.nbox("outer", 10 ** 7, mid, a)

    bc, _ = build(circ, qubit)
    assert circuit_depth(bc) == 10 ** 14


def test_independent_boxes_run_in_parallel():
    def body(qc, a):
        for _ in range(5):
            qc.hadamard(a)
        return a

    def circ(qc, a, b):
        qc.box("f", body, a)
        qc.box("f", body, b)
        return a, b

    bc, _ = build(circ, qubit, qubit)
    assert circuit_depth(bc) == 5


def test_t_depth_counts_only_t_gates():
    def circ(qc, a, b):
        qc.hadamard(a)
        qc.gate_T(a)
        qc.qnot(b, controls=a)
        qc.gate_T(b)
        qc.gate_T(a)
        return a, b

    bc, _ = build(circ, qubit, qubit)
    # a: T ... T (2 sequential); b's T depends on the CNOT after a's first T
    assert t_depth(bc) == 2
    assert circuit_depth(bc) == 4


def test_depth_of_real_oracle():
    from repro.algorithms.tf.main import build_part

    bc = build_part("pow17", 4, 3, 2, "orthodox")
    depth = circuit_depth(bc)
    from repro import aggregate_gate_count, total_gates

    total = total_gates(aggregate_gate_count(bc))
    assert 0 < depth <= total  # depth never exceeds gate count
    assert depth > 100  # the arithmetic is deeply sequential
