"""Tests for the quantum primitives library."""

import math
from collections import Counter

import numpy as np
import pytest

from repro import build, qubit
from repro.arith import equals_const
from repro.core.qdata import qdata_leaves
from repro.datatypes import IntM, qdint_shape
from repro.lib import (
    adjacency_interaction,
    amplitude_amplification,
    diffuse,
    exp_pauli,
    grover_iteration,
    phase_estimation,
    phase_flip_if_zero,
    phase_oracle_from_bit_oracle,
    prepare_uniform,
    qft,
    qft_inverse,
    qram_fetch,
    qram_store,
    qram_swap,
    trotterized_evolution,
)
from repro.sim import run_classical_generic, run_generic
from repro.sim.state import simulate


class TestQFT:
    @pytest.mark.parametrize("value", range(8))
    def test_round_trip(self, value):
        def circ(qc, x):
            return qft_inverse(qc, qft(qc, x))

        out = run_generic(circ, IntM(value, 3), seed=0)
        assert int(out) == value

    def test_zero_maps_to_uniform(self):
        bc, _ = build(lambda qc, x: qft(qc, x), qdint_shape(3))
        sim = simulate(bc)
        amps = sim.state.flatten()
        assert np.allclose(np.abs(amps), 1 / math.sqrt(8))

    def test_qft_matrix_row(self):
        """QFT|1> has amplitudes omega^k / sqrt(N)."""
        bc, outs = build(lambda qc, x: qft(qc, x), qdint_shape(2))
        sim = simulate(bc, {w: v for (w, _), v in zip(
            bc.circuit.inputs, [False, True])})
        wires = [w.wire_id for w in qdata_leaves(outs)]
        axes = [sim.axes[w] for w in wires]
        vec = np.moveaxis(sim.state, axes, range(2)).reshape(4)
        omega = np.exp(2j * math.pi / 4)
        expect = np.array([omega ** k for k in range(4)]) / 2
        assert np.allclose(vec, expect)


class TestGrover:
    def test_phase_flip_if_zero(self):
        def circ(qc):
            qs = [qc.qinit_qubit(False) for _ in range(3)]
            prepare_uniform(qc, qs)
            phase_flip_if_zero(qc, qs)
            return qs

        bc, outs = build(circ)
        sim = simulate(bc)
        vec = sim.state.flatten()
        signs = np.sign(vec.real)
        assert signs[0] == -1 and all(signs[1:] == 1)

    @pytest.mark.parametrize("marked", [0, 3, 5, 7])
    def test_search_finds_marked(self, marked):
        def circ(qc):
            x = qc.qinit(IntM(0, 3))
            prepare_uniform(qc, x)
            amplitude_amplification(
                qc, x,
                lambda q, d: phase_oracle_from_bit_oracle(
                    q, lambda q2, d2: equals_const(q2, d2, marked), d
                ),
                iterations=2,
            )
            return x

        hits = Counter(
            int(run_generic(circ, seed=s)) for s in range(25)
        )
        assert hits[marked] >= 20  # theory: ~94.5%

    def test_diffusion_preserves_uniform(self):
        def circ(qc):
            qs = [qc.qinit_qubit(False) for _ in range(3)]
            prepare_uniform(qc, qs)
            diffuse(qc, qs)
            return qs

        bc, _ = build(circ)
        sim = simulate(bc)
        amps = np.abs(sim.state.flatten())
        assert np.allclose(amps, amps[0])


class TestPhaseEstimation:
    @pytest.mark.parametrize("k", range(8))
    def test_exact_phases(self, k):
        def controlled_power(qc, target, power, ctl):
            for _ in range(k * power % 8):
                qc.rGate(3, target, controls=ctl)

        def circ(qc):
            t = qc.qinit(True)
            return phase_estimation(qc, controlled_power, t, 3)

        assert int(run_generic(circ, seed=0)) == k

    def test_inexact_phase_concentrates(self):
        theta = 0.3  # not a multiple of 1/8
        def controlled_power(qc, target, power, ctl):
            # diag(1, e^{2 pi i theta power}) on the target, controlled:
            # a doubly-conditioned global phase.
            qc.named_gate(
                "phase", controls=[ctl, target],
                param=2 * math.pi * theta * power,
            )

        def circ(qc):
            t = qc.qinit(True)
            return phase_estimation(qc, controlled_power, t, 3)

        outcomes = Counter(
            int(run_generic(circ, seed=s)) for s in range(40)
        )
        best_two = {2, 3}  # 0.3 * 8 = 2.4
        assert sum(outcomes[k] for k in best_two) >= 25


class TestQRAM:
    def test_fetch(self):
        def circ(qc):
            i = qc.qinit(IntM(2, 2))
            table = {a: qc.qinit(IntM(a * 5 + 1, 4)) for a in range(4)}
            t = qc.qinit(IntM(0, 4))
            qram_fetch(qc, i, table, t)
            return i, t, table

        i, t, table = run_classical_generic(circ)
        assert int(t) == 11

    def test_store(self):
        def circ(qc):
            i = qc.qinit(IntM(1, 2))
            table = {a: qc.qinit(IntM(0, 3)) for a in range(4)}
            s = qc.qinit(IntM(6, 3))
            qram_store(qc, i, table, s)
            return i, s, table

        i, s, table = run_classical_generic(circ)
        assert int(table[1]) == 6
        assert all(int(table[a]) == 0 for a in (0, 2, 3))

    def test_swap_all_addresses(self):
        for address in range(4):
            def circ(qc, address=address):
                i = qc.qinit(IntM(address, 2))
                table = {a: qc.qinit(IntM(a, 3)) for a in range(4)}
                v = qc.qinit(IntM(7, 3))
                qram_swap(qc, i, table, v)
                return i, v, table

            i, v, table = run_classical_generic(circ)
            assert int(v) == address
            assert int(table[address]) == 7


class TestHamiltonianSimulation:
    def test_single_x_rotation(self):
        def circ(qc):
            q = qc.qinit_qubit(False)
            exp_pauli(qc, 0.4, 1.0, {0: "X"}, [q])
            return q

        bc, _ = build(circ)
        vec = simulate(bc).state.flatten()
        expect = np.array([math.cos(0.4), -1j * math.sin(0.4)])
        assert np.allclose(vec, expect)

    def test_zz_phase(self):
        def circ(qc):
            a = qc.qinit_qubit(True)
            b = qc.qinit_qubit(True)
            exp_pauli(qc, 0.25, 1.0, {0: "Z", 1: "Z"}, [a, b])
            return a, b

        bc, _ = build(circ)
        vec = simulate(bc).state.flatten()
        # |11>: ZZ eigenvalue +1 -> phase e^{-i 0.25}
        assert np.allclose(vec[-1], np.exp(-0.25j))

    def test_trotter_converges(self):
        import scipy.linalg as sla

        hamiltonian = [(0.7, {0: "X"}), (0.3, {0: "Z"})]
        matrix = 0.7 * np.array([[0, 1], [1, 0]]) + 0.3 * np.diag([1, -1])

        def circ(steps):
            def inner(qc):
                q = qc.qinit_qubit(False)
                trotterized_evolution(qc, hamiltonian, 1.0, steps, [q])
                return q

            return inner

        exact = sla.expm(-1j * matrix) @ np.array([1, 0])
        errors = []
        for steps in (2, 8, 32):
            bc, _ = build(circ(steps))
            vec = simulate(bc).state.flatten()
            errors.append(np.linalg.norm(vec - exact))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 1e-2  # first-order Trotter: error ~ 1/steps

    def test_adjacency_interaction_runs(self):
        def circ(qc):
            a = [qc.qinit_qubit(False) for _ in range(2)]
            b = [qc.qinit_qubit(True) for _ in range(2)]
            r = qc.qinit_qubit(False)
            adjacency_interaction(qc, a, b, r, 0.2)
            return a, b, r

        bc, _ = build(circ)
        bc.check()
        simulate(bc)
