"""Property-based tests for the quantum arithmetic library.

Every circuit is checked against ordinary Python arithmetic through the
efficient classical simulator -- the same methodology Quipper programmers
use to validate oracles (paper Section 4.4.5).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import (
    add_const_in_place,
    add_in_place,
    add_out_of_place,
    add_tf,
    add_tf_select,
    decrement_in_place,
    equals,
    equals_const,
    greater_than,
    increment_in_place,
    less_than,
    mul_const_out_of_place,
    mul_out_of_place,
    mul_tf,
    negate_in_place,
    rotate_left_tf,
    rotate_right_tf,
    shift_left_out_of_place,
    square_out_of_place,
    square_tf,
    subtract_in_place,
    qft_add_in_place,
    qft_subtract_in_place,
)
from repro.datatypes import IntM, IntTF
from repro.sim import run_classical_generic, run_generic

L = 5
M = 1 << L
MT = M - 1

small = st.integers(min_value=0, max_value=M - 1)
small_tf = st.integers(min_value=0, max_value=MT - 1)
settings.register_profile("arith", max_examples=12, deadline=None)
settings.load_profile("arith")


@given(small, small)
def test_add_in_place(a, b):
    def circ(qc, x, y):
        add_in_place(qc, x, y)
        return x, y

    x, y = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert int(x) == a and int(y) == (a + b) % M


@given(small, small)
def test_add_with_carry_out(a, b):
    def circ(qc, x, y):
        c = qc.qinit_qubit(False)
        add_in_place(qc, x, y, carry_out=c)
        return x, y, c

    x, y, c = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert int(y) == (a + b) % M
    assert c == (a + b >= M)


@given(small, small, st.booleans())
def test_controlled_add(a, b, ctl):
    def circ(qc, c, x, y):
        add_in_place(qc, x, y, controls=c)
        return c, x, y

    c, x, y = run_classical_generic(circ, ctl, IntM(a, L), IntM(b, L))
    assert int(y) == ((a + b) % M if ctl else b)


@given(small, small)
def test_subtract_inverts_add(a, b):
    def circ(qc, x, y):
        add_in_place(qc, x, y)
        subtract_in_place(qc, x, y)
        return x, y

    x, y = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert int(y) == b


@given(small, small)
def test_subtract_value(a, b):
    def circ(qc, x, y):
        subtract_in_place(qc, x, y)
        return x, y

    _, y = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert int(y) == (b - a) % M


@given(small, small)
def test_add_out_of_place(a, b):
    def circ(qc, x, y):
        return x, y, add_out_of_place(qc, x, y)

    x, y, s = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert (int(x), int(y), int(s)) == (a, b, (a + b) % M)


@given(small, st.integers(min_value=0, max_value=M - 1))
def test_add_const(a, k):
    def circ(qc, y):
        add_const_in_place(qc, k, y)
        return y

    y = run_classical_generic(circ, IntM(a, L))
    assert int(y) == (a + k) % M


@given(small)
def test_increment_decrement(a):
    def circ(qc, y):
        increment_in_place(qc, y)
        increment_in_place(qc, y)
        decrement_in_place(qc, y)
        return y

    y = run_classical_generic(circ, IntM(a, L))
    assert int(y) == (a + 1) % M


@given(small)
def test_negate(a):
    def circ(qc, y):
        negate_in_place(qc, y)
        return y

    y = run_classical_generic(circ, IntM(a, L))
    assert int(y) == (-a) % M


@given(small, small)
def test_mul(a, b):
    def circ(qc, x, y):
        return x, y, mul_out_of_place(qc, x, y)

    x, y, p = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert int(p) == (a * b) % M


@given(small)
def test_square(a):
    def circ(qc, x):
        return x, square_out_of_place(qc, x)

    x, s = run_classical_generic(circ, IntM(a, L))
    assert int(s) == (a * a) % M


@given(small, st.integers(min_value=0, max_value=M - 1))
def test_mul_const(a, k):
    def circ(qc, y):
        return y, mul_const_out_of_place(qc, k, y)

    y, p = run_classical_generic(circ, IntM(a, L))
    assert int(p) == (a * k) % M


@given(small, small)
def test_comparators(a, b):
    def circ(qc, x, y):
        lt = less_than(qc, x, y)
        gt = greater_than(qc, x, y)
        eq = equals(qc, x, y)
        return x, y, lt, gt, eq

    x, y, lt, gt, eq = run_classical_generic(circ, IntM(a, L), IntM(b, L))
    assert (lt, gt, eq) == (a < b, a > b, a == b)
    assert int(x) == a and int(y) == b  # inputs restored


@given(small, st.integers(min_value=0, max_value=M - 1))
def test_equals_const(a, k):
    def circ(qc, x):
        return x, equals_const(qc, x, k)

    x, eq = run_classical_generic(circ, IntM(a, L))
    assert eq == (a == k)


@given(small_tf, small_tf)
def test_add_tf(a, b):
    def circ(qc, x, y):
        return x, y, add_tf(qc, x, y)

    x, y, s = run_classical_generic(circ, IntTF(a, L), IntTF(b, L))
    assert s == (a + b) % MT


@given(small_tf, small_tf, st.booleans())
def test_add_tf_select(a, b, ctl):
    def circ(qc, c, x, y):
        m = qc.measure(c) if False else c
        return c, x, y, add_tf_select(qc, c, x, y)

    c, x, y, s = run_classical_generic(
        circ, ctl, IntTF(a, L), IntTF(b, L)
    )
    assert s == ((a + b) % MT if ctl else b % MT)


@given(small_tf, small_tf)
def test_mul_tf(a, b):
    def circ(qc, x, y):
        return x, y, mul_tf(qc, x, y)

    x, y, p = run_classical_generic(circ, IntTF(a, L), IntTF(b, L))
    assert p == (a * b) % MT


@given(small_tf)
def test_square_tf(a):
    def circ(qc, x):
        return x, square_tf(qc, x)

    x, s = run_classical_generic(circ, IntTF(a, L))
    assert s == (a * a) % MT


@given(small_tf)
def test_rotate_tf_roundtrip(a):
    def circ(qc, x):
        y = rotate_left_tf(qc, x)
        z = rotate_right_tf(qc, y)
        return z

    z = run_classical_generic(circ, IntTF(a, L))
    assert z == a


@given(small_tf)
def test_rotate_is_doubling(a):
    def circ(qc, x):
        return rotate_left_tf(qc, x)

    y = run_classical_generic(circ, IntTF(a, L))
    assert y == (2 * a) % MT


@given(small, st.integers(min_value=0, max_value=L - 1))
def test_shift_left(a, k):
    def circ(qc, x):
        return x, shift_left_out_of_place(qc, x, k)

    x, y = run_classical_generic(circ, IntM(a, L))
    assert int(y) == (a << k) % M


@pytest.mark.parametrize("a", [0, 1, 3, 5, 7])
@pytest.mark.parametrize("b", [0, 2, 6, 7])
def test_qft_adder(a, b):
    def circ(qc, x, y):
        qft_add_in_place(qc, x, y)
        return x, y

    x, y = run_generic(circ, IntM(a, 3), IntM(b, 3), seed=0)
    assert int(y) == (a + b) % 8
    assert int(x) == a


@pytest.mark.parametrize("a,b", [(1, 5), (3, 3), (7, 0), (6, 2)])
def test_qft_subtract(a, b):
    def circ(qc, x, y):
        qft_add_in_place(qc, x, y)
        qft_subtract_in_place(qc, x, y)
        return x, y

    x, y = run_generic(circ, IntM(a, 3), IntM(b, 3), seed=0)
    assert int(y) == b


def test_adder_is_ancilla_clean():
    """All adder scratch is assertively terminated (checked by the sim)."""

    def circ(qc, x, y):
        add_in_place(qc, x, y)
        return x, y

    from repro import aggregate_gate_count, build
    from repro.datatypes import qdint_shape

    bc, _ = build(circ, qdint_shape(L), qdint_shape(L))
    counts = aggregate_gate_count(bc)
    inits = sum(v for (k, _, _), v in counts.items() if k.startswith("Init"))
    terms = sum(v for (k, _, _), v in counts.items() if k.startswith("Term"))
    assert inits == terms == L
