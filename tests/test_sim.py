"""Tests for the three simulators and the QRAM execution model."""

import math

import numpy as np
import pytest

from repro import build, neg, qubit
from repro.core.errors import (
    AssertionFailedError,
    SimulationError,
)
from repro.sim import (
    run_classical_generic,
    run_clifford_generic,
    run_generic,
    run_with_lifting,
)
from repro.sim.classical import evaluate
from repro.sim.matrices import gate_matrix
from repro.sim.state import StateVector, simulate
from repro.core.gates import NamedGate


class TestGateMatrices:
    @pytest.mark.parametrize(
        "name,arity",
        [("H", 1), ("X", 1), ("Y", 1), ("Z", 1), ("S", 1), ("T", 1),
         ("V", 1), ("E", 1), ("swap", 2), ("W", 2), ("iX", 1)],
    )
    def test_unitarity(self, name, arity):
        matrix = gate_matrix(NamedGate(name, tuple(range(arity))))
        dim = matrix.shape[0]
        assert np.allclose(matrix @ matrix.conj().T, np.eye(dim))

    def test_v_squared_is_x(self):
        v = gate_matrix(NamedGate("V", (0,)))
        x = gate_matrix(NamedGate("X", (0,)))
        assert np.allclose(v @ v, x)

    def test_w_fixes_00_11(self):
        w = gate_matrix(NamedGate("W", (0, 1)))
        assert np.allclose(w[:, 0], [1, 0, 0, 0])
        assert np.allclose(w[:, 3], [0, 0, 0, 1])

    def test_inverted_is_adjoint(self):
        t = gate_matrix(NamedGate("T", (0,)))
        t_dag = gate_matrix(NamedGate("T", (0,), inverted=True))
        assert np.allclose(t @ t_dag, np.eye(2))

    def test_exp_z_matrix(self):
        m = gate_matrix(NamedGate("exp(-i%Z)", (0,), param=0.3))
        assert np.allclose(
            m, np.diag([np.exp(-0.3j), np.exp(0.3j)])
        )

    def test_unknown_gate_rejected(self):
        with pytest.raises(SimulationError):
            gate_matrix(NamedGate("mystery", (0,)))


class TestStateVector:
    def test_plus_state(self):
        def circ(qc):
            q = qc.qinit_qubit(False)
            qc.hadamard(q)
            return q

        bc, _ = build(circ)
        sim = simulate(bc)
        assert np.allclose(np.abs(sim.state.flatten()),
                           [1 / math.sqrt(2)] * 2)

    def test_assertion_checked(self):
        def circ(qc):
            q = qc.qinit_qubit(False)
            qc.qnot(q)
            qc.qterm(q, assertion=False)  # wrong: it is |1>
            return ()

        bc, _ = build(circ)
        with pytest.raises(AssertionFailedError):
            simulate(bc)

    def test_assertion_true_value(self):
        def circ(qc):
            q = qc.qinit_qubit(True)
            qc.qterm(q, assertion=True)
            return ()

        bc, _ = build(circ)
        simulate(bc)  # no error

    def test_negative_controls(self):
        def circ(qc):
            a = qc.qinit_qubit(False)
            b = qc.qinit_qubit(False)
            qc.qnot(b, controls=neg(a))
            return a, b

        out = run_generic(circ, seed=0)
        assert out == (False, True)

    def test_classically_controlled_gate(self):
        def circ(qc):
            a = qc.qinit_qubit(True)
            m = qc.measure(a)
            b = qc.qinit_qubit(False)
            qc.qnot(b, controls=m)
            return m, b

        out = run_generic(circ, seed=0)
        assert out == (True, True)

    def test_measurement_statistics(self):
        def circ(qc):
            q = qc.qinit_qubit(False)
            qc.hadamard(q)
            return qc.measure(q)

        outcomes = [run_generic(circ, seed=s) for s in range(200)]
        ones = sum(outcomes)
        assert 70 <= ones <= 130  # ~Binomial(200, 0.5)

    def test_global_phase_under_control(self):
        # controlled global phase == relative phase: |+>|1> picks it up
        def circ(qc):
            c = qc.qinit_qubit(False)
            qc.hadamard(c)
            qc.named_gate("phase", controls=c, param=math.pi)
            qc.hadamard(c)
            return c

        out = run_generic(circ, seed=1)
        assert out is True  # phase pi flips |+> to |->


class TestClassicalSim:
    def test_toffoli_table(self):
        def circ(qc, a, b, c):
            qc.qnot(c, controls=(a, b))
            return a, b, c

        for a in (False, True):
            for b in (False, True):
                out = run_classical_generic(circ, a, b, False)
                assert out == (a, b, a and b)

    def test_swap(self):
        def circ(qc, a, b):
            qc.named_gate("swap", a, b)
            return a, b

        assert run_classical_generic(circ, True, False) == (False, True)

    def test_nonclassical_gate_rejected(self):
        def circ(qc, a):
            qc.hadamard(a)
            return a

        with pytest.raises(SimulationError):
            run_classical_generic(circ, False)

    def test_cgates(self):
        def circ(qc, a):
            m = qc.measure(a)
            x = qc.cgate_and(m, m)
            y = qc.cgate_xor(m, x)
            z = qc.cgate_or(m, y)
            w = qc.cgate_not(z)
            return m, x, y, z, w

        out = run_classical_generic(circ, True)
        assert out == (True, True, False, True, False)

    def test_classical_assertion(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)  # dirty if a
            return a

        run_classical_generic(circ, False)
        with pytest.raises(AssertionFailedError):
            run_classical_generic(circ, True)


class TestCliffordSim:
    def test_agrees_with_statevector_deterministic(self):
        def circ(qc, a, b, c):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            qc.gate_S(b)
            qc.gate_Z(c)
            qc.qnot(c, controls=b)
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b, c

        for seed in range(10):
            sv = run_generic(circ, False, True, False, seed=seed)
            cl = run_clifford_generic(circ, False, True, False, seed=seed)
            # deterministic outcomes must agree exactly; compare sets of
            # possible outcomes over seeds instead of per-seed equality
        sv_set = {
            run_generic(circ, False, True, False, seed=s) for s in range(25)
        }
        cl_set = {
            run_clifford_generic(circ, False, True, False, seed=s)
            for s in range(25)
        }
        assert sv_set == cl_set

    def test_ghz_correlations(self):
        def ghz(qc):
            a = qc.qinit_qubit(False)
            b = qc.qinit_qubit(False)
            c = qc.qinit_qubit(False)
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            qc.qnot(c, controls=b)
            return a, b, c

        for seed in range(20):
            out = run_clifford_generic(ghz, seed=seed)
            assert out[0] == out[1] == out[2]

    def test_assertion_checking(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
            return a

        run_clifford_generic(circ, False)
        with pytest.raises(AssertionFailedError):
            run_clifford_generic(circ, True)

    def test_non_clifford_rejected(self):
        def circ(qc, a):
            qc.gate_T(a)
            return a

        with pytest.raises(SimulationError):
            run_clifford_generic(circ, False)

    def test_bell_measurement_random_but_correlated(self):
        def bell(qc):
            a = qc.qinit_qubit(False)
            b = qc.qinit_qubit(False)
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        outcomes = {run_clifford_generic(bell, seed=s) for s in range(30)}
        assert outcomes == {(False, False), (True, True)}

    def test_matrix_classified_clifford_aliases(self):
        # Gates that equal a tableau op up to global phase now run on the
        # tableau via the cached-matrix classification: Rz(pi/2) ~ S,
        # R(2pi/2) ~ Z, and iX ~ X (the phase is unobservable uncontrolled).
        def circ(qc):
            a = qc.qinit_qubit(False)
            qc.hadamard(a)
            qc.rotZ(math.pi / 2, a)    # ~ S
            qc.rotZ(math.pi / 2, a)    # ~ S  (S S = Z)
            qc.rGate(1, a)             # ~ Z  (back to |+> overall phase)
            qc.hadamard(a)
            b = qc.qinit_qubit(False)
            qc.named_gate("iX", b)     # ~ X
            return a, b

        for seed in range(5):
            assert run_clifford_generic(circ, seed=seed) == (False, True)

    def test_phase_aliased_gates_rejected_under_control(self):
        # iX == i*X: a *global* phase uncontrolled, but a *relative* phase
        # under a control -- C-iX is NOT a CNOT and must be rejected, not
        # silently simulated as one (statevector: (C-iX)^2 == Z on the
        # control; a tableau CNOT pair would give identity).
        def circ(qc):
            c = qc.qinit_qubit(False)
            t = qc.qinit_qubit(False)
            qc.hadamard(c)
            qc.named_gate("iX", t, controls=c)
            qc.named_gate("iX", t, controls=c)
            qc.hadamard(c)
            return c, t

        assert run_generic(circ, seed=0) == (True, False)  # Z kicked back
        with pytest.raises(SimulationError):
            run_clifford_generic(circ, seed=0)

    def test_controlled_rz_pi_rejected(self):
        # Rz(pi) = -i Z; controlled it differs from CZ by a relative phase.
        def circ(qc):
            c = qc.qinit_qubit(False)
            t = qc.qinit_qubit(False)
            qc.rotZ(math.pi, t, controls=c)
            return c, t

        with pytest.raises(SimulationError):
            run_clifford_generic(circ, seed=0)


class TestDynamicLifting:
    def test_measured_value_matches_lifted(self):
        def circ(qc):
            q = qc.qinit_qubit(False)
            qc.hadamard(q)
            m = qc.measure(q)
            value = qc.dynamic_lift(m)
            echo = qc.qinit(value)  # circuit depends on the measurement
            return m, echo

        for seed in range(20):
            m, echo = run_with_lifting(circ, seed=seed)
            assert m == echo

    def test_adaptive_circuit_generation(self):
        """Generate a different gate depending on the lifted value."""

        def circ(qc):
            q = qc.qinit_qubit(True)
            m = qc.measure(q)
            value = qc.dynamic_lift(m)
            out = qc.qinit_qubit(False)
            if value:  # a generation-time branch on an execution result
                qc.qnot(out)
            return out

        assert run_with_lifting(circ, seed=0) is True

    def test_quantum_memory_persists_across_lift(self):
        def circ(qc):
            a = qc.qinit_qubit(False)
            b = qc.qinit_qubit(False)
            qc.hadamard(a)
            qc.qnot(b, controls=a)  # entangle
            m = qc.measure(a)
            value = qc.dynamic_lift(m)
            # b must agree with the lifted value of a
            return value, qc.measure(b)

        for seed in range(15):
            value, b = run_with_lifting(circ, seed=seed)
            assert value == b
