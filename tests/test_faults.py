"""Unit tests for the deterministic fault-injection registry.

The fault plan is the foundation the chaos suite stands on: if its
firing schedule were not a pure function of ``(seed, point, mode, n)``,
none of the crash/corrupt/degrade tests in ``test_service.py`` would be
reproducible.  These tests pin the parser, the determinism, and the
corruption helper in isolation.
"""

from __future__ import annotations

import pytest

from repro.service.faults import (
    DELAY_S,
    MODES,
    POINTS,
    FaultPlan,
    InjectedFault,
    PoolUnavailable,
)
from repro.service.registry import ServiceError


class TestParsing:
    def test_clauses_round_trip_through_spec(self):
        plan = FaultPlan.parse(
            "worker_exec:crash@0.2, disk_read:corrupt@0.1,"
            "job_admission:reject@once", seed=7,
        )
        assert plan.seed == 7
        assert [r.point for r in plan.rules] == [
            "worker_exec", "disk_read", "job_admission"
        ]
        assert plan.rules[2].once is True
        reparsed = FaultPlan.parse(plan.spec(), seed=7)
        assert reparsed.spec() == plan.spec()

    def test_empty_and_none_are_inert(self):
        for spec in (None, "", "  ", ","):
            plan = FaultPlan.parse(spec)
            assert not plan.active()
            assert plan.fire("worker_exec") is None

    def test_bare_mode_defaults_to_always(self):
        plan = FaultPlan.parse("ipc_send:crash")
        assert plan.rules[0].rate == 1.0
        assert all(plan.fire("ipc_send") for _ in range(5))

    def test_rejections(self):
        for bad, fragment in [
            ("nowhere:crash@0.5", "unknown fault point"),
            ("worker_exec:melt@0.5", "unknown fault mode"),
            ("worker_exec:crash@maybe", "not a number"),
            ("worker_exec:crash@1.5", "in [0, 1]"),
            ("worker_exec:crash@-0.1", "in [0, 1]"),
        ]:
            with pytest.raises(ServiceError) as excinfo:
                FaultPlan.parse(bad)
            assert fragment in str(excinfo.value), bad

    def test_from_env(self):
        plan = FaultPlan.from_env({
            "REPRO_FAULTS": "disk_write:crash@0.25",
            "REPRO_FAULTS_SEED": "42",
        })
        assert plan.seed == 42
        assert plan.spec() == "disk_write:crash@0.25"
        assert not FaultPlan.from_env({}).active()
        with pytest.raises(ServiceError):
            FaultPlan.from_env({"REPRO_FAULTS_SEED": "seven"})


class TestDeterminism:
    def _pattern(self, seed: int, n: int = 64) -> list[bool]:
        plan = FaultPlan.parse("worker_exec:crash@0.3", seed=seed)
        return [plan.fire("worker_exec") is not None for _ in range(n)]

    def test_same_seed_same_schedule(self):
        assert self._pattern(7) == self._pattern(7)

    def test_different_seeds_differ(self):
        assert self._pattern(7) != self._pattern(8)

    def test_rate_is_roughly_honored(self):
        fires = sum(self._pattern(3, n=2000))
        assert 450 <= fires <= 750  # 0.3 +- generous tolerance, but fixed

    def test_points_are_independent_streams(self):
        plan = FaultPlan.parse(
            "worker_exec:crash@0.3,disk_read:crash@0.3", seed=7
        )
        exec_fires = [plan.fire("worker_exec") is not None
                      for _ in range(64)]
        disk_fires = [plan.fire("disk_read") is not None for _ in range(64)]
        assert exec_fires != disk_fires

    def test_once_fires_exactly_on_first_arrival(self):
        plan = FaultPlan.parse("worker_spawn:crash@once", seed=1)
        fires = [plan.fire("worker_spawn") is not None for _ in range(10)]
        assert fires == [True] + [False] * 9

    def test_first_rule_wins(self):
        plan = FaultPlan.parse("ipc_send:delay@1,ipc_send:crash@1")
        assert plan.fire("ipc_send").mode == "delay"


class TestCorruption:
    def test_corrupt_text_is_deterministic_and_damaging(self):
        text = "QGate[\"not\"](3) with controls=[+1]\n" * 10
        a = FaultPlan.parse("disk_read:corrupt@1", seed=7)
        b = FaultPlan.parse("disk_read:corrupt@1", seed=7)
        assert a.corrupt_text(text) == b.corrupt_text(text)
        assert a.corrupt_text(text) != text
        assert len(a.corrupt_text(text)) == len(text)

    def test_corrupt_empty_text_still_differs(self):
        assert FaultPlan().corrupt_text("") != ""


class TestIntrospection:
    def test_describe_counts_arrivals_and_fires(self):
        plan = FaultPlan.parse("job_admission:reject@once", seed=7)
        plan.fire("job_admission")
        plan.fire("job_admission")
        plan.fire("worker_exec")  # no rule: counted arrival, no fire
        info = plan.describe()
        assert info["seed"] == 7
        assert info["arrivals"] == {"job_admission": 2, "worker_exec": 1}
        assert info["fired"] == {"job_admission.reject": 1}

    def test_exceptions_pickle_across_the_process_boundary(self):
        import pickle

        fault = InjectedFault("injected worker_exec:crash")
        clone = pickle.loads(pickle.dumps(fault))
        assert isinstance(clone, InjectedFault)
        assert str(clone) == str(fault)
        assert isinstance(
            pickle.loads(pickle.dumps(PoolUnavailable("gone"))),
            PoolUnavailable,
        )

    def test_module_constants(self):
        assert "worker_exec" in POINTS and "job_admission" in POINTS
        assert set(MODES) == {"crash", "corrupt", "delay", "reject"}
        assert 0 < DELAY_S < 1
