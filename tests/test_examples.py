"""Integration tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[p.stem for p in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example prints something


def test_examples_exist():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship more
