"""Streamed-vs-materialized equivalence suite + streaming memory ceiling.

The streaming engine's contract: every consumer of
``Program.stream()`` produces *exactly* what the materialized path
produces -- identical Counters, depths, resource dicts, interchange
text, QASM text, and (where the randomness stream lines up) identical
seeded samples -- while never materializing the main circuit.  The suite
pins that equivalence across all seven algorithm families and bounds the
memory of a >10M-logical-gate streamed count.
"""

from __future__ import annotations

import io
import itertools
import math

import numpy as np
import pytest

from repro import Program, obs, qubit
from repro.core.errors import QuipperError
from repro.io import loads
from repro.io.qasm import QasmExportError
from repro.transform import to_toffoli

from repro.algorithms.bwt.main import bwt_program
from repro.algorithms.bf.main import hex_oracle_program
from repro.algorithms.cl.regulator import period_finding_circuit
from repro.algorithms.gse.main import gse_program
from repro.algorithms.qls import DEMO_B, DEMO_MATRIX
from repro.algorithms.qls.hhl import hhl_circuit
from repro.algorithms.tf.main import part_program
from repro.algorithms.usv.lattice import parity_kernel_matrix, planted_instance
from repro.algorithms.usv.usv import coset_sampling_circuit


def _usv_program() -> Program:
    basis, parity = planted_instance(3, 0)
    kernel = parity_kernel_matrix(parity, seed=0)
    return Program.from_bcircuit(
        coset_sampling_circuit(kernel), name="usv-coset"
    )


#: One small, fast instance per algorithm family of the paper's
#: evaluation.  Factories, not instances: streamed and materialized sides
#: each get an independent Program so the stream genuinely regenerates.
ALGORITHMS = {
    "bwt": lambda: bwt_program(2, 1, 0.3),
    "tf-pow17": lambda: part_program("pow17", 2, 2, 1, "simple"),
    "bf-hex": lambda: hex_oracle_program(2, 2),
    "gse": lambda: gse_program(2, 1.0, 1),
    "qls-hhl": lambda: Program.capture(
        lambda qc: hhl_circuit(qc, DEMO_MATRIX, DEMO_B, 2, math.pi / 2, 1.0),
        name="hhl",
    ),
    "cl": lambda: Program.capture(
        lambda qc: period_finding_circuit(qc, 4, 6), name="cl"
    ),
    "usv": _usv_program,
}

ALGO = pytest.mark.parametrize("name", sorted(ALGORITHMS))


@ALGO
class TestSevenAlgorithmEquivalence:
    """Acceptance: streamed consumers == materialized consumers, everywhere."""

    def test_gatecount(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        assert streamed.stream().count() == materialized.count()
        assert streamed.count(stream=True) == materialized.count()

    def test_depth_and_t_depth(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        assert streamed.stream().depth() == materialized.depth()
        assert streamed.stream().t_depth() == materialized.t_depth()

    def test_resources(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        assert streamed.resources(stream=True) == materialized.resources()

    def test_ascii_dump_roundtrip(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        fp = io.StringIO()
        streamed.dumps(fp=fp)
        text = fp.getvalue()
        assert text == materialized.dumps()
        reloaded = loads(text)
        assert reloaded.circuit == materialized.bcircuit.circuit
        assert {
            name: sub.circuit for name, sub in reloaded.namespace.items()
        } == {
            name: sub.circuit
            for name, sub in materialized.bcircuit.namespace.items()
        }
        # Custom QData shapes degrade to their tuple encoding on load, so
        # object equality is not the invariant -- but one load reaches the
        # text-level fixpoint.
        from repro.io import dumps as io_dumps

        stable = io_dumps(reloaded)
        assert io_dumps(loads(stable)) == stable

    def test_ascii_printer(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        fp = io.StringIO()
        streamed.ascii(fp=fp)
        assert fp.getvalue() == materialized.ascii() + "\n"

    def test_qasm_export(self, name):
        """Streamed QASM (with a fused binary decomposition in the
        stream) matches the materialized transform + export; circuits
        QASM 2 cannot express must fail identically on both paths."""
        materialized = ALGORITHMS[name]().transform("binary")
        streamed = ALGORITHMS[name]().stream("binary")
        try:
            expected = materialized.qasm()
        except QasmExportError:
            with pytest.raises(QasmExportError):
                streamed.write_qasm(io.StringIO())
            return
        fp = io.StringIO()
        streamed.write_qasm(fp)
        assert fp.getvalue() == expected

    def test_streamed_transform_counts(self, name):
        materialized = ALGORITHMS[name]().transform(to_toffoli)
        streamed = ALGORITHMS[name]().stream(to_toffoli)
        assert streamed.count() == materialized.count()

    def test_iteration_matches_stored_gates(self, name):
        materialized = ALGORITHMS[name]()
        streamed = ALGORITHMS[name]()
        assert list(streamed.stream()) == materialized.bcircuit.circuit.gates


class TestSimulationFeeds:
    """The statevector/clifford feeds track the materialized backends."""

    @staticmethod
    def _bell():
        def bell(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        return Program.capture(bell, qubit, qubit)

    def test_statevector_state_equivalence_gse(self):
        reference = gse_program(2, 1.0, 1).run(seed=11)
        streamed = gse_program(2, 1.0, 1).stream().run(seed=11)
        assert streamed.bits == reference.bits
        assert np.allclose(streamed.statevector, reference.statevector)
        assert streamed.statevector_wires == reference.statevector_wires

    def test_batched_sampling_is_seed_exact(self):
        reference = self._bell().run(shots=512, seed=5)
        streamed = self._bell().stream().run(shots=512, seed=5)
        assert streamed.counts == reference.counts

    def test_mid_circuit_measurement_sampling_is_seed_exact(self):
        def midm(qc, a, b):
            qc.hadamard(a)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            return m, b

        reference = Program.capture(midm, qubit, qubit).run(shots=64, seed=9)
        streamed = (
            Program.capture(midm, qubit, qubit).stream().run(shots=64, seed=9)
        )
        assert streamed.counts == reference.counts

    def test_clifford_feed_is_seed_exact(self):
        reference = self._bell().run("clifford", shots=64, seed=3)
        streamed = self._bell().stream().run("clifford", shots=64, seed=3)
        assert streamed.counts == reference.counts

    def test_clifford_feed_grows_tableau_mid_stream(self):
        def grower(qc, a):
            qc.hadamard(a)
            fresh = [qc.qinit_qubit(False) for _ in range(20)]
            for q in fresh:
                qc.qnot(q, controls=a)
            bits = qc.measure(fresh)
            qc.cdiscard(bits)
            return a

        reference = Program.capture(grower, qubit).run(
            "clifford", shots=32, seed=7
        )
        streamed = Program.capture(grower, qubit).stream().run(
            "clifford", shots=32, seed=7
        )
        assert streamed.counts == reference.counts

    def test_resources_backend_has_no_feed(self):
        from repro.backends import BackendError

        with pytest.raises(BackendError):
            self._bell().stream().run("resources")

    def test_statevector_feed_enforces_width_cap_on_inputs(self):
        from repro.backends import BackendError

        def wide(qc, qs):
            return qs

        program = Program.capture(wide, [qubit] * 5)
        with pytest.raises(BackendError, match="input qubits exceed"):
            program.stream().run(max_width=3)

    def test_statevector_feed_enforces_width_cap_before_allocating(self):
        from repro.backends import BackendError

        def grower(qc, a):
            fresh = [qc.qinit_qubit(False) for _ in range(6)]
            for q in fresh:
                qc.qterm(q)
            return a

        program = Program.capture(grower, qubit)
        with pytest.raises(BackendError, match="exceeded the statevector"):
            program.stream().run(max_width=4)


def _repeated_subroutine_program(repetitions: int) -> Program:
    """~8 gates per body, iterated ``repetitions`` times in place."""

    def body(qc, qs):
        with qc.ancilla() as a:
            for q in qs:
                qc.qnot(a, controls=q)
        qc.hadamard(qs[0])
        qc.gate_T(qs[1])
        return qs

    def circ(qc, qs):
        qc.nbox("step", repetitions, body, qs)
        return qs

    return Program.capture(circ, [qubit] * 3, name="repeated")


class TestMemoryCeiling:
    """Acceptance: >10M logical gates resource-count in O(body) memory."""

    def test_ten_million_gate_count_under_memory_budget(self):
        program = _repeated_subroutine_program(2_000_000)
        with obs.capture(memory=True) as rec:
            counts = program.stream().count()
        peak = rec.peak_memory
        assert sum(counts.values()) > 10_000_000
        # The count is symbolic (body counted once, multiplied through
        # the repetition factor): peak allocation stays in the kilobyte
        # range.  16 MiB is two orders of magnitude of headroom.
        assert peak < 16 * 1024 * 1024
        # Nothing was cached on the Program either -- the circuit was
        # never generated.
        assert repr(program).endswith("(lazy)>")

    def test_many_emitted_gates_stream_in_bounded_memory(self):
        """A stream of 100k *emitted* top-level gates allocates O(1) per
        gate -- the gates are dropped as they flow past."""

        def circ(qc, qs):
            for _ in range(25_000):
                qc.hadamard(qs[0])
                qc.qnot(qs[1], controls=qs[0])
                qc.gate_T(qs[1])
                qc.qnot(qs[1], controls=qs[0])
            return qs

        program = Program.capture(circ, [qubit] * 2)
        with obs.capture(memory=True) as rec:
            counts = program.stream().count()
        assert sum(counts.values()) == 100_000
        assert rec.peak_memory < 8 * 1024 * 1024
        # The telemetry layer saw the same stream it measured: the
        # retention histogram exists only if with_computed ran (it did
        # not here), but the stream span must be present.
        assert any(s.name == "stream" for s in rec.spans)

    def test_resources_of_large_repeated_stream(self):
        program = _repeated_subroutine_program(2_000_000)
        resources = program.stream().resources()
        assert resources["total_gates"] > 10_000_000
        reference = _repeated_subroutine_program(2_000_000)
        assert resources["width"] == reference.bcircuit.check()
        assert resources["depth"] == reference.depth()


class TestStreamMechanics:
    """The plumbing: iteration, re-running, buffering, error paths."""

    def test_early_break_unwinds_the_producer(self):
        program = _repeated_subroutine_program(5)

        def endless(qc, qs):
            for _ in range(10_000):
                qc.hadamard(qs[0])
            return qs

        stream = Program.capture(endless, [qubit]).stream()
        first = list(itertools.islice(iter(stream), 7))
        assert len(first) == 7
        # The stream handle is reusable: a fresh full pass still works.
        assert stream.total_gates() == 10_000
        assert program.stream().total_gates() > 0

    def test_producer_errors_propagate_through_iteration(self):
        def broken(qc, a):
            qc.hadamard(a)
            raise RuntimeError("mid-generation failure")

        stream = Program.capture(broken, qubit).stream()
        with pytest.raises(RuntimeError, match="mid-generation"):
            list(stream)

    def test_with_computed_buffers_only_the_compute_block(self):
        def circ(qc, qs):
            def compute():
                qc.hadamard(qs[0])
                with qc.ancilla() as a:
                    qc.qnot(a, controls=qs[1])

                    def inner():
                        qc.gate_T(a)

                    qc.with_computed(inner, lambda _: qc.gate_S(a))
                return None

            qc.with_computed(compute, lambda _: qc.gate_Z(qs[0]))
            return qs

        materialized = Program.capture(circ, [qubit] * 2)
        streamed = Program.capture(circ, [qubit] * 2)
        assert streamed.stream().count() == materialized.count()
        fp = io.StringIO()
        streamed.dumps(fp=fp)
        assert fp.getvalue() == materialized.dumps()

    def test_streaming_builder_cannot_finish(self):
        from repro.core.stream import StreamingCirc

        qc = StreamingCirc(lambda g: None)
        with pytest.raises(QuipperError):
            qc.finish()

    def test_built_program_streams_by_replay(self):
        program = self_captured = ALGORITHMS["gse"]()
        program.bcircuit  # force the build; stream() must replay it
        assert program.stream().count() == self_captured.count()

    def test_stream_repr_names_the_program(self):
        stream = _repeated_subroutine_program(3).stream(to_toffoli)
        assert "repeated" in repr(stream)
