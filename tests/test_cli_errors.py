"""Algorithm CLIs fail invalid arguments cleanly: exit 2, one line.

The regression: a bad size or execution argument used to escape
``runner.emit`` as a raw traceback (exit 1).  The runner now catches
pipeline and validation errors at the CLI boundary and reports them the
way argparse reports flag errors -- a single ``<prog>: error: <reason>``
line on stderr and exit status 2 -- while real bugs still traceback.
"""

from __future__ import annotations

import pytest

from repro.algorithms.bwt.main import main as bwt_main
from repro.algorithms.tf.main import main as tf_main


class TestBwtCli:
    def test_negative_tree_height_exits_2_with_one_line(self, capsys):
        status = bwt_main(["-n", "-1"])
        captured = capsys.readouterr()
        assert status == 2
        assert "Traceback" not in captured.err
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert lines[0].startswith("bwt: error:") or ": error:" in lines[0]

    def test_controlled_rotation_qasm_export_succeeds(self, capsys):
        # This invocation used to exit 2: the BWT walk's controlled
        # exp(-i%Z) / V gates had no OpenQASM 2 spelling.  The exporter
        # now encodes them exactly (crz, h/cu1/h), so the same command
        # must produce a parseable program instead of a refusal.
        from repro.program import Program

        status = bwt_main(["-n", "2", "-f", "qasm"])
        captured = capsys.readouterr()
        assert status == 0
        assert captured.out.startswith("OPENQASM 2.0;")
        assert Program.loads_qasm(captured.out).qasm() == captured.out

    def test_valid_invocation_still_exits_0(self, capsys):
        assert bwt_main(["-n", "3", "-f", "gatecount"]) == 0
        assert "error" not in capsys.readouterr().err


class TestTfCli:
    def test_invalid_shots_exits_2_with_one_line(self, capsys):
        status = tf_main(["-s", "pow17", "-l", "2", "-f", "run",
                          "--shots", "-3"])
        captured = capsys.readouterr()
        assert status == 2
        assert "Traceback" not in captured.err
        lines = [line for line in captured.err.splitlines() if line]
        assert len(lines) == 1
        assert ": error:" in lines[0]

    def test_valid_invocation_still_exits_0(self, capsys):
        assert tf_main(["-s", "pow17", "-l", "2", "-f", "gatecount"]) == 0
        assert "error" not in capsys.readouterr().err


class TestArgparseErrorsUnchanged:
    """Bad flag *values* still go through argparse's own exit-2 path."""

    def test_bad_format_choice_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            bwt_main(["-f", "nonsense"])
        assert excinfo.value.code == 2
        assert "invalid choice" in capsys.readouterr().err
