"""Tests for the text and gate-count output formats."""

import io

from repro import build, neg, qubit
from repro.output import (
    format_bcircuit,
    format_circuit,
    format_gatecount,
    gatecount_generic,
    print_generic,
)


def _mycirc(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return a, b


class TestAscii:
    def test_basic_format(self):
        bc, _ = build(_mycirc, qubit, qubit)
        text = format_circuit(bc.circuit)
        assert "Inputs: 0:Qubit, 1:Qubit" in text
        assert 'QGate["H"](0)' in text
        assert 'QGate["not"](1) with controls=[+0]' in text
        assert "Outputs: 0:Qubit, 1:Qubit" in text

    def test_negative_control_rendering(self):
        def circ(qc, a, b):
            qc.qnot(a, controls=neg(b))
            return a, b

        bc, _ = build(circ, qubit, qubit)
        assert "controls=[-1]" in format_circuit(bc.circuit)

    def test_init_term_measure_rendering(self):
        def circ(qc, a):
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return qc.measure(a)

        bc, _ = build(circ, qubit)
        text = format_circuit(bc.circuit)
        assert "QInit0(" in text
        assert "QTerm0(" in text
        assert "QMeas(0)" in text

    def test_subroutines_printed(self):
        def circ(qc, a, b):
            qc.box("sub", _mycirc, a, b)
            return a, b

        bc, _ = build(circ, qubit, qubit)
        text = format_bcircuit(bc)
        assert 'Subroutine["sub"]' in text
        assert 'Subroutine: "sub"' in text

    def test_inverted_and_repeated_boxcall(self):
        def body(qc, a):
            qc.gate_T(a)
            return a

        def circ(qc, a):
            qc.nbox("b", 4, body, a)
            qc.reverse_endo(lambda q, x: q.box("b", body, x), a)
            return a

        bc, _ = build(circ, qubit)
        text = format_bcircuit(bc)
        assert 'Subroutine["b"] x4(' in text
        assert 'Subroutine*["b"]' in text

    def test_print_generic(self):
        buffer = io.StringIO()
        print_generic(_mycirc, qubit, qubit, file=buffer)
        assert 'QGate["H"](0)' in buffer.getvalue()


class TestGatecountFormat:
    def test_paper_style_lines(self):
        def circ(qc, a, b, c):
            qc.qnot(a, controls=b)
            qc.qnot(a, controls=(b, c))
            qc.qnot(a, controls=(b, neg(c)))
            with qc.ancilla() as x:
                qc.qnot(x, controls=a)
                qc.qnot(x, controls=a)
            return a, b, c

        bc, _ = build(circ, qubit, qubit, qubit)
        text = format_gatecount(bc)
        assert '1: "Init0"' in text
        assert '1: "Not", controls 1+1' in text
        assert '1: "Not", controls 2' in text
        assert "Total gates: 7" in text
        assert "Inputs: 3" in text
        assert "Outputs: 3" in text
        assert "Qubits in circuit: 4" in text

    def test_per_subroutine_report(self):
        def circ(qc, a, b):
            qc.box("f", _mycirc, a, b)
            return a, b

        bc, _ = build(circ, qubit, qubit)
        text = format_gatecount(bc, per_subroutine=True)
        assert 'Subroutine "f" gate count:' in text
        assert "Aggregated gate count:" in text

    def test_gatecount_generic(self):
        counts = gatecount_generic(_mycirc, qubit, qubit)
        assert counts[("H", 0, 0)] == 1
        assert counts[("Not", 1, 0)] == 1
