"""Tests for the pluggable execution backend subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BackendError,
    RunResult,
    available_backends,
    bit,
    build,
    get_backend,
    qubit,
    register_backend,
    run_generic,
)
from repro.backends import Backend, marginal_counts


def bell(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return a, b


def bell_measured(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return qc.measure((a, b))


def ghz(qc, a, b, c):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    qc.qnot(c, controls=b)
    return a, b, c


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = set(available_backends())
        assert {"statevector", "clifford", "classical", "resources"} <= names

    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(BackendError, match="statevector"):
            get_backend("quantum-annealer")

    def test_custom_backend_registration(self):
        @register_backend
        class FakeBackend(Backend):
            name = "fake-for-test"
            capabilities = frozenset({"counts"})

            def run(self, bc, *, shots=None, in_values=None, seed=None):
                return RunResult(backend=self.name, shots=shots,
                                 counts={"0": shots or 1})

        try:
            result = get_backend("fake-for-test").run(None, shots=3)
            assert result.counts == {"0": 3}
        finally:
            from repro.backends.registry import _REGISTRY

            del _REGISTRY["fake-for-test"]

    def test_nameless_backend_rejected(self):
        class Nameless(Backend):
            pass

        with pytest.raises(BackendError):
            register_backend(Nameless)

    def test_constructor_options_forwarded(self):
        backend = get_backend("statevector", max_width=5)
        assert backend.max_width == 5


class TestStatevectorBackend:
    def test_shot_counts_acceptance(self):
        # The PR's acceptance criterion, verbatim.
        bc, _ = build(bell, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=1024)
        assert isinstance(result.counts, dict)
        assert sum(result.counts.values()) == 1024
        assert set(result.counts) <= {"00", "11"}

    def test_seeded_runs_reproduce(self):
        bc, _ = build(bell, qubit, qubit)
        backend = get_backend("statevector")
        a = backend.run(bc, shots=256, seed=11).counts
        b = backend.run(bc, shots=256, seed=11).counts
        assert a == b

    def test_measurement_free_run_is_batched(self):
        bc, _ = build(ghz, qubit, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=64, seed=0)
        assert result.metadata["batched"]
        assert set(result.counts) <= {"000", "111"}

    def test_trailing_measurements_still_batch(self):
        bc, _ = build(bell_measured, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=64, seed=0)
        assert result.metadata["batched"]
        assert set(result.counts) <= {"00", "11"}

    def test_mid_circuit_measurement_resimulates(self):
        def teleport_ish(qc, a, b):
            qc.hadamard(a)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            return m, b

        bc, _ = build(teleport_ish, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=40, seed=1)
        assert not result.metadata["batched"]
        assert set(result.counts) <= {"00", "11"}
        assert sum(result.counts.values()) == 40

    def test_statevector_without_shots(self):
        bc, _ = build(bell, qubit, qubit)
        result = get_backend("statevector").run(bc)
        assert result.counts is None
        amplitudes = np.abs(result.statevector.ravel()) ** 2
        assert amplitudes == pytest.approx([0.5, 0, 0, 0.5])

    def test_in_values(self):
        def passthrough(qc, a, b):
            return a, b

        bc, _ = build(passthrough, qubit, qubit)
        wires = [w for w, _ in bc.circuit.inputs]
        result = get_backend("statevector").run(
            bc, shots=8, in_values={wires[0]: True}
        )
        assert result.counts == {"10": 8}

    def test_width_limit(self):
        bc, _ = build(bell, qubit, qubit)
        backend = get_backend("statevector", max_width=1)
        assert not backend.supports(bc)
        with pytest.raises(BackendError, match="width"):
            backend.run(bc, shots=1)

    def test_invalid_shots(self):
        bc, _ = build(bell, qubit, qubit)
        with pytest.raises(BackendError, match="shots"):
            get_backend("statevector").run(bc, shots=0)


class TestCliffordBackend:
    def test_bell_counts(self):
        bc, _ = build(bell, qubit, qubit)
        result = get_backend("clifford").run(bc, shots=128, seed=5)
        assert set(result.counts) == {"00", "11"}
        assert sum(result.counts.values()) == 128

    def test_agrees_with_statevector(self):
        bc, _ = build(ghz, qubit, qubit, qubit)
        sv = get_backend("statevector").run(bc, shots=400, seed=2).counts
        cl = get_backend("clifford").run(bc, shots=400, seed=2).counts
        assert set(sv) == set(cl) == {"000", "111"}
        assert abs(sv["000"] - cl["000"]) < 120  # both ~200

    def test_deterministic_run_without_shots(self):
        def flip(qc, a):
            qc.gate_X(a)
            return qc.measure(a)

        bc, _ = build(flip, qubit)
        result = get_backend("clifford").run(bc)
        assert list(result.bits.values()) == [True]


class TestClassicalBackend:
    def test_toffoli_truth_table(self):
        def toffoli(qc, a, b, c):
            qc.qnot(c, controls=(a, b))
            return a, b, c

        bc, _ = build(toffoli, qubit, qubit, qubit)
        wires = [w for w, _ in bc.circuit.inputs]
        backend = get_backend("classical")
        for a in (False, True):
            for b in (False, True):
                result = backend.run(
                    bc, in_values={wires[0]: a, wires[1]: b}
                )
                key = "".join("1" if v else "0" for v in (a, b, a and b))
                assert result.counts == {key: 1}

    def test_shots_report_single_outcome(self):
        def ident(qc, a):
            return a

        bc, _ = build(ident, bit)
        result = get_backend("classical").run(bc, shots=100)
        assert result.counts == {"0": 100}


class TestResourceBackend:
    def test_resource_keys(self):
        bc, _ = build(ghz, qubit, qubit, qubit)
        res = get_backend("resources").run(bc).resources
        assert res["total_gates"] == 3
        assert res["width"] == 3
        assert res["depth"] == 3
        assert res["inputs"] == res["outputs"] == 3

    def test_counts_boxed_without_inlining(self):
        def inner(qc, a):
            qc.hadamard(a)
            return a

        def outer(qc, a):
            qc.box("sub", inner, a, repetitions=1000)
            return a

        bc, _ = build(outer, qubit)
        res = get_backend("resources").run(bc).resources
        assert res["total_gates"] == 1000
        assert res["subroutines"] == 1

    def test_report_formatting(self):
        from repro.backends import format_resource_report

        bc, _ = build(ghz, qubit, qubit, qubit)
        report = format_resource_report(get_backend("resources").run(bc))
        assert "Total gates: 3" in report
        assert "Depth: 3" in report


class TestRunResult:
    def test_probabilities(self):
        result = RunResult(backend="x", shots=4, counts={"0": 3, "1": 1})
        assert result.probabilities() == {"0": 0.75, "1": 0.25}

    def test_most_frequent(self):
        result = RunResult(backend="x", shots=4, counts={"0": 1, "1": 3})
        assert result.most_frequent() == "1"

    def test_countless_result_raises(self):
        result = RunResult(backend="x")
        with pytest.raises(BackendError):
            result.probabilities()
        with pytest.raises(BackendError):
            result.most_frequent()

    def test_marginal_counts(self):
        bc, _ = build(ghz, qubit, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=100, seed=9)
        first = bc.circuit.outputs[0][0]
        marg = marginal_counts(result, bc, [first])
        assert set(marg) <= {0, 1}
        assert sum(marg.values()) == 100

    def test_marginal_counts_rejects_non_output(self):
        bc, _ = build(ghz, qubit, qubit, qubit)
        result = get_backend("statevector").run(bc, shots=10, seed=9)
        with pytest.raises(BackendError):
            marginal_counts(result, bc, [99999])


class TestRunGeneric:
    def test_default_backend_counts(self):
        result = run_generic(bell, qubit, qubit, shots=64, seed=4)
        assert result.backend == "statevector"
        assert sum(result.counts.values()) == 64

    def test_backend_selection(self):
        result = run_generic(bell, qubit, qubit, backend="clifford",
                             shots=16, seed=4)
        assert result.backend == "clifford"

    def test_resources_via_run_generic(self):
        result = run_generic(ghz, qubit, qubit, qubit, backend="resources")
        assert result.resources["total_gates"] == 3


class TestRunnerEmit:
    def test_run_format_with_countless_backend(self, capsys):
        import argparse

        from repro.algorithms.runner import emit

        bc, _ = build(ghz, qubit, qubit, qubit)
        args = argparse.Namespace(
            fmt="run", backend="resources", shots=8, seed=None
        )
        assert emit(bc, args) == 2
        assert "does not produce counts" in capsys.readouterr().out
