"""Compile-service suite: cache keying, concurrency, HTTP, determinism.

The load-bearing claims, each tested against a real server on an
ephemeral port (no mocked transports):

* **Single compile** -- any number of clients submitting the same
  circuit (defaulted or spelled-out params, sync or async, compile or
  run) cause exactly one pipeline build; the obs counters are the proof.
* **Deterministic runs** -- one seed, one byte-stream: canonical-JSON
  run results are identical across worker shards, shard counts, and
  server restarts (the disk warm-start path included).
* **Bounded load** -- full queues answer 429 + Retry-After instead of
  accepting unbounded work; overlong jobs die with a timeout error
  while the server keeps serving.
* **Fault tolerance** -- a SIGKILLed or crash-looping worker, a
  corrupted disk-cache entry, a flaky pipe, or an unavailable pool
  never costs a client a request or a byte of determinism: the
  supervisor respawns and requeues, corrupt entries are quarantined
  and recompiled, and the whole chaos matrix replays deterministically
  under a fixed fault seed.
"""

from __future__ import annotations

import asyncio
import functools
import importlib
import json
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager

import pytest

from repro.service.cache import CompileCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.digest import canonical_json, digest_text, spec_digest
from repro.service.faults import FaultPlan
from repro.service.jobs import canonical_run_options
from repro.service.metrics import LatencyRing, ServiceMetrics, percentile
from repro.service.registry import ServiceError, canonical_spec
from repro.service.server import CHUNK_SIZE, ServiceServer


@pytest.fixture(autouse=True)
def _fresh_compile_pool():
    """Isolate the process-wide digest-keyed stream pool per test.

    Every in-process "server" here shares one interpreter with the
    tests before it; clearing the pool keeps single-compile counter
    assertions honest.
    """
    importlib.import_module("repro.transform.inline")._DIGEST_POOL.clear()
    yield


@asynccontextmanager
async def service(**kwargs):
    """A started server on an ephemeral port, stopped on exit."""
    kwargs.setdefault("shards", 1)
    server = ServiceServer(port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def in_thread(fn, *args):
    """Run blocking client code off the server's event loop."""
    return await asyncio.get_running_loop().run_in_executor(None, fn, *args)


def client_for(server: ServiceServer, **kwargs) -> ServiceClient:
    kwargs.setdefault("timeout", 120)
    return ServiceClient("127.0.0.1", server.port, **kwargs)


# ---------------------------------------------------------------------------
# Pure pieces: spec canonicalization, digests, metrics
# ---------------------------------------------------------------------------


class TestCanonicalSpec:
    def test_defaults_fill_to_the_same_digest(self):
        implicit = canonical_spec({"program": "bwt"})
        explicit = canonical_spec({
            "program": "bwt",
            "params": {"n": 4, "s": 1, "t": 0.1, "oracle": "orthodox"},
        })
        assert implicit == explicit
        assert spec_digest(implicit) == spec_digest(explicit)

    def test_per_job_keys_stay_out_of_the_cache_key(self):
        plain = canonical_spec({"program": "bell"})
        decorated = canonical_spec({
            "program": "bell", "action": "run",
            "run": {"shots": 64, "seed": 1}, "sync": True,
        })
        assert spec_digest(plain) == spec_digest(decorated)

    def test_any_compile_relevant_key_changes_the_digest(self):
        base = spec_digest(canonical_spec({"program": "bwt"}))
        for variant in (
            {"program": "bwt", "params": {"n": 5}},
            {"program": "bwt", "transform": "binary"},
            {"program": "bwt", "optimize": True},
            {"program": "bwt", "optimize": ["cancel"]},
        ):
            assert spec_digest(canonical_spec(variant)) != base, variant

    def test_rejections(self):
        cases = [
            ({"program": "no-such"}, 404, "unknown program"),
            ({"program": "bwt", "params": {"bogus": 1}}, 400, "unknown param"),
            ({"program": "bwt", "params": {"n": 0}}, 400, ">="),
            ({"program": "bwt", "params": {"n": "four"}}, 400, "integer"),
            ({"program": "bwt", "transform": "nope"}, 400, "transform"),
            ({"program": "bwt", "optimize": ["nope"]}, 400, "pass"),
            ({"program": "bwt", "optimize": "yes"}, 400, "optimize"),
            ({"program": "bell", "circuit": "x"}, 400, "exactly one"),
            ({}, 400, "exactly one"),
        ]
        for spec, status, fragment in cases:
            with pytest.raises(ServiceError) as excinfo:
                canonical_spec(spec)
            assert excinfo.value.status == status, spec
            assert fragment in str(excinfo.value), spec

    def test_run_option_validation(self):
        ok = canonical_run_options({"shots": 8, "seed": 1,
                                    "in_values": {"0": True}})
        assert ok["in_values"] == {0: True}
        for bad in (
            {"shots": 0}, {"shots": -3}, {"shots": True},
            {"seed": "x"}, {"bogus": 1}, {"in_values": {"q": True}},
            {"in_values": {"0": 1}}, "not-a-dict",
        ):
            with pytest.raises(ServiceError):
                canonical_run_options(bad)

    def test_digest_domains_are_disjoint(self):
        assert digest_text("x", domain="a") != digest_text("x", domain="b")
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([5.0], 0.99) == 5.0
        values = [float(i) for i in range(101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0

    def test_latency_ring_window(self):
        ring = LatencyRing(size=4)
        for i in range(10):
            ring.record(float(i))
        summary = ring.summary()
        assert summary["count"] == 10  # lifetime count survives eviction
        assert summary["max_ms"] == 9.0  # window keeps the recent four
        assert ring.samples.maxlen == 4

    def test_counters_mirror_into_obs_sessions(self):
        from repro import obs

        metrics = ServiceMetrics()
        metrics.inc("test.counter", 2)  # outside any session: local only
        with obs.capture() as rec:
            metrics.inc("test.counter", 3)
        assert metrics.counters["test.counter"] == 5
        assert rec.counters["service.test.counter"] == 3


# ---------------------------------------------------------------------------
# The cache layer: single-flight under concurrency
# ---------------------------------------------------------------------------


class TestCompileCacheSingleFlight:
    def test_concurrent_gets_build_once(self):
        async def hammer():
            metrics = ServiceMetrics()
            cache = CompileCache(metrics)
            cspec = canonical_spec({"program": "bell"})
            digest = spec_digest(cspec)
            results = await asyncio.gather(*[
                cache.get(digest, cspec) for _ in range(8)
            ])
            return metrics, results

        metrics, results = asyncio.run(hammer())
        assert metrics.counters["cache.misses"] == 1
        assert metrics.counters.get("cache.coalesced", 0) == 7
        entries = {id(entry) for entry, _hit in results}
        assert len(entries) == 1  # everyone got the same object
        assert sum(1 for _entry, hit in results if not hit) == 1

    def test_lru_eviction_bounds_the_cache(self):
        async def fill():
            cache = CompileCache(ServiceMetrics(), maxsize=2)
            for n in (2, 3, 4):
                cspec = canonical_spec({"program": "bwt", "params": {"n": n}})
                await cache.get(spec_digest(cspec), cspec)
            return cache

        cache = asyncio.run(fill())
        assert len(cache.entries) == 2

    def test_failed_build_is_not_cached(self):
        async def attempt():
            cache = CompileCache(ServiceMetrics())
            cspec = dict(canonical_spec({"program": "bell"}),
                         circuit="not quipper at all")
            del cspec["program"], cspec["params"]
            digest = spec_digest(cspec)
            with pytest.raises(Exception):
                await cache.get(digest, cspec)
            return cache

        cache = asyncio.run(attempt())
        assert not cache.entries and not cache._pending


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------


class TestHttpEndpoints:
    def test_introspection_and_sync_queries(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        health = svc.health()
                        programs = svc.programs()
                        count_a = svc.query(program="bwt", action="count")
                        count_b = svc.query(
                            program="bwt", action="count",
                            params={"n": 4, "s": 1, "t": 0.1,
                                    "oracle": "orthodox"},
                        )
                        depth = svc.query(program="bell", action="depth")
                        stats = svc.stats()
                        profile = svc.profile()
                        return (health, programs, count_a, count_b, depth,
                                stats, profile)
                return await in_thread(work)

        health, programs, count_a, count_b, depth, stats, profile = (
            asyncio.run(scenario())
        )
        assert health["ok"] is True and "version" in health
        assert {"bell", "bwt", "tf"} <= set(programs["programs"])
        assert count_a == count_b and count_a["total"] > 0
        assert depth["depth"] >= 2
        # Defaulted and explicit params shared one compile.
        assert stats["service"]["counters"]["cache.misses"] == 2  # bwt+bell
        assert stats["service"]["counters"]["cache.hits"] >= 1
        assert stats["service"]["latency"]["hit"]["count"] >= 1
        assert profile["counters"]["cache.compiled_stream.misses"] == 2

    def test_async_job_lifecycle(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        job = svc.submit(program="bell", action="compile")
                        assert job["state"] in ("queued", "running", "done")
                        done = svc.wait(job["id"])
                        result = svc.result(job["id"])
                        missing = None
                        try:
                            svc.status("j99999999")
                        except ServiceClientError as exc:
                            missing = exc.status
                        return done, result, missing
                return await in_thread(work)

        done, result, missing = asyncio.run(scenario())
        assert done["state"] == "done" and done["cache_hit"] is False
        assert done["queue_wait_ms"] >= 0 and done["exec_ms"] >= 0
        assert result["result"]["width"] == 2
        assert result["result"]["gates_inlined"] >= 3
        assert missing == 404

    def test_error_statuses_and_bodies(self):
        async def scenario():
            async with service() as server:
                def work():
                    statuses = {}
                    with client_for(server) as svc:
                        for key, spec in [
                            ("unknown_program", {"program": "zzz"}),
                            ("bad_param",
                             {"program": "bwt", "params": {"n": 0}}),
                            ("bad_action",
                             {"program": "bell", "action": "explode"}),
                            ("bad_run", {"program": "bell", "action": "run",
                                         "run": {"shots": -1}}),
                        ]:
                            try:
                                svc.query(**spec)
                            except ServiceClientError as exc:
                                statuses[key] = exc.status
                        # Sync pipeline refusal: unencodable QASM is 400.
                        try:
                            svc.query(program="bwt", action="qasm")
                        except ServiceClientError as exc:
                            statuses["qasm_refusal"] = exc.status
                    return statuses
                return await in_thread(work)

        statuses = asyncio.run(scenario())
        assert statuses == {
            "unknown_program": 404, "bad_param": 400, "bad_action": 400,
            "bad_run": 400, "qasm_refusal": 400,
        }

    def test_backpressure_answers_429_with_retry_after(self):
        async def scenario():
            async with service(max_pending=0) as server:
                def work():
                    # max_wait=0 disables client-side retries: the 429
                    # must surface immediately, on the first attempt.
                    with client_for(server, max_wait=0) as svc:
                        try:
                            svc.submit(program="bell")
                        except ServiceClientError as exc:
                            return exc
                return await in_thread(work)

        exc = asyncio.run(scenario())
        assert exc.status == 429
        assert exc.retry_after == 1.0
        assert exc.attempts == 1

    def test_large_bodies_stream_chunked(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        out = svc.query(program="bwt", transform="binary",
                                        action="quipper")
                        return out, svc.stats()
                return await in_thread(work)

        out, stats = asyncio.run(scenario())
        assert len(out["text"]) > CHUNK_SIZE
        assert stats["service"]["counters"]["http.chunked_responses"] >= 1

    def test_timeout_kills_the_job_not_the_server(self):
        async def scenario():
            async with service(job_timeout=0.001) as server:
                def work():
                    with client_for(server) as svc:
                        job = svc.submit(program="bwt", action="compile")
                        done = svc.wait(job["id"], timeout=30)
                        result_status = None
                        try:
                            svc.result(job["id"])
                        except ServiceClientError as exc:
                            result_status = exc.status
                        health = svc.health()
                        return done, result_status, health
                return await in_thread(work)

        done, result_status, health = asyncio.run(scenario())
        assert done["state"] == "error" and "timeout" in done["error"]
        assert result_status == 504
        assert health["ok"] is True

    def test_cancel_queued_job(self):
        async def scenario():
            async with service(max_running=1) as server:
                def work():
                    with client_for(server) as svc:
                        # The first job occupies the single execution slot
                        # long enough for the second to be verifiably
                        # queued when we cancel it.
                        blocker = svc.submit(program="bwt",
                                             params={"n": 5}, action="count")
                        victim = svc.submit(program="bell", action="depth")
                        cancelled = svc.cancel(victim["id"])
                        final = svc.wait(victim["id"], timeout=30)
                        svc.wait(blocker["id"], timeout=60)
                        return cancelled, final
                return await in_thread(work)

        cancelled, final = asyncio.run(scenario())
        assert final["state"] == "cancelled"


# ---------------------------------------------------------------------------
# The acceptance scenario: concurrent clients, one compile, stable bytes
# ---------------------------------------------------------------------------

HAMMER_SPEC = {
    "program": "bwt", "params": {"n": 3}, "action": "run",
    "run": {"backend": "statevector", "shots": 32, "seed": 1234},
}


def _hammer(server: ServiceServer, clients: int) -> list[bytes]:
    """N threads, each its own connection, all submitting one circuit."""
    def one_client(i: int) -> bytes:
        with client_for(server) as svc:
            if i % 2:  # odd clients take the async path
                job = svc.submit(**HAMMER_SPEC)
                status = svc.wait(job["id"], timeout=120)
                assert status["state"] == "done", status
                result = svc.result(job["id"])["result"]
            else:  # even clients take the sync fast path
                result = svc.query(**HAMMER_SPEC)
        return canonical_json(result).encode()

    with ThreadPoolExecutor(max_workers=clients) as pool:
        return list(pool.map(one_client, range(clients)))


class TestConcurrentSingleCompile:
    def test_many_clients_one_compile_identical_bytes(self):
        async def scenario():
            async with service(shards=2, max_running=8) as server:
                payloads = await in_thread(_hammer, server, 6)

                def collect():
                    with client_for(server) as svc:
                        return svc.stats(), svc.profile()
                stats, profile = await in_thread(collect)
                return payloads, stats, profile

        payloads, stats, profile = asyncio.run(scenario())
        # Everyone saw byte-identical seeded results.
        assert len(set(payloads)) == 1
        counts = json.loads(payloads[0])["counts"]
        assert sum(counts.values()) == 32
        # ... and the service compiled the circuit exactly once: one
        # service-cache miss, one pipeline inline, everything else hits.
        assert stats["service"]["counters"]["cache.misses"] == 1
        assert stats["service"]["counters"]["cache.hits"] == 5
        assert profile["counters"]["cache.compiled_stream.misses"] == 1
        assert stats["service"]["counters"]["pool.jobs"] == 6
        assert stats["service"]["latency"]["run"]["count"] == 6

    def test_shard_affinity_reuses_one_warm_worker(self):
        async def scenario():
            async with service(shards=2) as server:
                def work():
                    with client_for(server) as svc:
                        first = svc.query(**HAMMER_SPEC)
                        job = svc.submit(**HAMMER_SPEC)
                        status = svc.wait(job["id"], timeout=120)
                    return first, status
                return await in_thread(work)

        _first, status = asyncio.run(scenario())
        assert status["worker"]["program_warm"] is True
        assert status["worker"]["stream_warm"] is True


class TestRestartDeterminism:
    def test_disk_warm_start_and_identical_bytes(self, tmp_path):
        cache_dir = tmp_path / "compiled"

        async def lifetime():
            async with service(cache_dir=str(cache_dir)) as server:
                def work():
                    with client_for(server) as svc:
                        result = svc.query(**HAMMER_SPEC)
                        return canonical_json(result).encode(), svc.stats()
                return await in_thread(work)

        first_bytes, first_stats = asyncio.run(lifetime())
        assert first_stats["service"]["counters"].get("cache.disk_hits", 0) == 0
        assert list(cache_dir.glob("*.quip")), "compile was not persisted"

        second_bytes, second_stats = asyncio.run(lifetime())
        assert second_bytes == first_bytes
        assert second_stats["service"]["counters"]["cache.disk_hits"] == 1

    def test_shard_count_does_not_change_results(self):
        async def run_with(shards: int):
            async with service(shards=shards) as server:
                def work():
                    with client_for(server) as svc:
                        return canonical_json(
                            svc.query(**HAMMER_SPEC)
                        ).encode()
                return await in_thread(work)

        assert asyncio.run(run_with(1)) == asyncio.run(run_with(3))


# ---------------------------------------------------------------------------
# Fault tolerance: client retries, disk integrity, chaos, degradation
# ---------------------------------------------------------------------------

COUNT_SPEC = {"program": "bwt", "params": {"n": 3}, "action": "count"}

#: A cheap seeded run for the fault matrix (bell compiles in ms).
RUN_SPEC = {
    "program": "bell", "action": "run",
    "run": {"backend": "statevector", "shots": 8, "seed": 5},
}


@functools.lru_cache(maxsize=None)
def _clean_payload(spec_json: str) -> bytes:
    """The byte-exact answer a fault-free server gives for *spec_json*.

    Cached across tests: the whole point of the chaos suite is that no
    injected fault may change these bytes, so one clean boot per spec
    is the reference for every faulted comparison.
    """
    spec = json.loads(spec_json)

    async def scenario():
        async with service() as server:
            def work():
                with client_for(server) as svc:
                    return canonical_json(svc.query(**spec)).encode()
            return await in_thread(work)

    return asyncio.run(scenario())


def _counters(stats: dict) -> dict:
    return stats["service"]["counters"]


class TestClientResilience:
    def test_429_retries_until_capacity_frees_up(self):
        """A full queue costs the client latency, never an error."""
        async def scenario():
            async with service(max_running=1, max_pending=1) as server:
                def blocker():
                    # Occupies the whole admission budget for as long as
                    # the first worker spawn takes (hundreds of ms).
                    with client_for(server) as svc:
                        return svc.submit(**HAMMER_SPEC)["id"]
                job_id = await in_thread(blocker)

                def contender():
                    with client_for(server, max_wait=30,
                                    backoff=0.05) as svc:
                        result = svc.query(**COUNT_SPEC)
                        svc.wait(job_id, timeout=120)
                        return canonical_json(result).encode(), svc.stats()
                return await in_thread(contender)

        payload, stats = asyncio.run(scenario())
        assert payload == _clean_payload(json.dumps(COUNT_SPEC))
        assert _counters(stats)["jobs.rejected"] >= 1
        assert _counters(stats).get("jobs.failed", 0) == 0

    def test_max_wait_budget_bounds_the_retrying(self):
        async def scenario():
            async with service(max_pending=0) as server:
                def work():
                    # Budget fits exactly one Retry-After wait: the
                    # client must retry once, then give up cleanly.
                    with client_for(server, max_wait=1.6) as svc:
                        t0 = time.monotonic()
                        try:
                            svc.submit(program="bell")
                        except ServiceClientError as exc:
                            return exc, time.monotonic() - t0
                return await in_thread(work)

        exc, elapsed = asyncio.run(scenario())
        assert exc.status == 429
        assert exc.attempts == 2
        assert exc.retry_after == 1.0
        assert elapsed < 5.0

    def test_reconnects_across_a_server_restart(self, tmp_path):
        """One client object outlives the server it talked to."""
        async def scenario():
            first_server = ServiceServer(
                port=0, shards=1, cache_dir=str(tmp_path)
            )
            await first_server.start()
            port = first_server.port
            svc = ServiceClient("127.0.0.1", port, timeout=120)
            try:
                first = await in_thread(
                    lambda: canonical_json(svc.query(**COUNT_SPEC)).encode()
                )
                await first_server.stop()
                second_server = ServiceServer(
                    port=port, shards=1, cache_dir=str(tmp_path)
                )
                await second_server.start()
                try:
                    # Same client, same keep-alive connection object:
                    # the dead socket must reconnect-and-resend.
                    second = await in_thread(
                        lambda: canonical_json(
                            svc.query(**COUNT_SPEC)
                        ).encode()
                    )
                finally:
                    await second_server.stop()
            finally:
                svc.close()
            return first, second

        first, second = asyncio.run(scenario())
        assert first == second


class TestDiskIntegrity:
    def _lifetime(self, cache_dir, faults=None, spec=COUNT_SPEC):
        async def scenario():
            async with service(cache_dir=str(cache_dir),
                               faults=faults) as server:
                def work():
                    with client_for(server) as svc:
                        result = svc.query(**spec)
                        return canonical_json(result).encode(), svc.stats()
                return await in_thread(work)

        return asyncio.run(scenario())

    def test_truncated_entry_quarantined_and_recompiled(self, tmp_path):
        clean, _ = self._lifetime(tmp_path)
        [path] = list(tmp_path.glob("*.quip"))
        raw = path.read_text(encoding="utf-8")
        path.write_text(raw[: len(raw) // 2], encoding="utf-8")

        healed, stats = self._lifetime(tmp_path)
        assert healed == clean
        assert _counters(stats)["cache.quarantined"] == 1
        assert _counters(stats)["cache.quarantined.digest_mismatch"] == 1
        assert _counters(stats).get("cache.disk_hits", 0) == 0
        assert (tmp_path / "quarantine" / path.name).exists()
        # The rebuild rewrote a good entry: trusted again next lifetime.
        _, third = self._lifetime(tmp_path)
        assert _counters(third)["cache.disk_hits"] == 1

    def test_bitflipped_entry_quarantined(self, tmp_path):
        clean, _ = self._lifetime(tmp_path)
        [path] = list(tmp_path.glob("*.quip"))
        header, _, body = path.read_text(encoding="utf-8").partition("\n")
        pos = len(body) // 2
        flip = "X" if body[pos] != "X" else "Y"
        path.write_text(header + "\n" + body[:pos] + flip + body[pos + 1:],
                        encoding="utf-8")

        healed, stats = self._lifetime(tmp_path)
        assert healed == clean
        assert _counters(stats)["cache.quarantined"] == 1

    def test_legacy_headerless_entry_quarantined(self, tmp_path):
        clean, _ = self._lifetime(tmp_path)
        [path] = list(tmp_path.glob("*.quip"))
        _header, _, body = path.read_text(encoding="utf-8").partition("\n")
        path.write_text(body, encoding="utf-8")  # pre-checksum format

        healed, stats = self._lifetime(tmp_path)
        assert healed == clean
        assert _counters(stats)["cache.quarantined"] == 1

    def test_injected_read_corruption_heals(self, tmp_path):
        clean, _ = self._lifetime(tmp_path)
        plan = FaultPlan.parse("disk_read:corrupt@once", seed=7)
        healed, stats = self._lifetime(tmp_path, faults=plan)
        assert healed == clean
        assert _counters(stats)["faults.injected"] == 1
        assert _counters(stats)["cache.quarantined"] == 1
        assert stats["faults"]["fired"] == {"disk_read.corrupt": 1}

    def test_injected_write_failure_keeps_serving(self, tmp_path):
        plan = FaultPlan.parse("disk_write:crash@once", seed=7)
        first, stats = self._lifetime(tmp_path, faults=plan)
        assert _counters(stats)["cache.disk_write_errors"] == 1
        assert not list(tmp_path.glob("*.quip"))  # entry stayed memory-only
        second, stats2 = self._lifetime(tmp_path)
        assert second == first
        assert _counters(stats2).get("cache.disk_hits", 0) == 0


class TestChaos:
    def test_sigkill_worker_mid_hammer_zero_failures(self):
        """The acceptance scenario: SIGKILL costs nobody a request."""
        async def scenario():
            async with service(shards=1, max_running=8) as server:
                def warm():
                    with client_for(server) as svc:
                        job = svc.submit(**HAMMER_SPEC)
                        status = svc.wait(job["id"], timeout=120)
                        assert status["state"] == "done", status
                        return status["worker"]["pid"]
                pid = await in_thread(warm)

                def hammer_and_kill():
                    def killer():
                        time.sleep(0.05)
                        os.kill(pid, signal.SIGKILL)
                    thread = threading.Thread(target=killer)
                    thread.start()
                    try:
                        payloads = _hammer(server, 6)
                    finally:
                        thread.join()
                    # One more job: even if the kill landed after the
                    # hammer drained, the supervisor must still notice
                    # the corpse and respawn before answering this.
                    with client_for(server) as svc:
                        payloads.append(
                            canonical_json(svc.query(**HAMMER_SPEC)).encode()
                        )
                        return payloads, svc.stats(), svc.profile()
                return await in_thread(hammer_and_kill)

        payloads, stats, profile = asyncio.run(scenario())
        assert len(set(payloads)) == 1  # byte-identical through the murder
        counters = _counters(stats)
        assert counters["worker.respawns"] >= 1
        assert counters.get("jobs.failed", 0) == 0
        assert counters.get("jobs.fallback_sync", 0) == 0  # recovered, not
        # degraded -- and the obs mirror carries the acceptance counter.
        assert profile["counters"]["service.worker.respawns"] >= 1

    def test_pool_restart_between_submissions(self):
        async def scenario():
            async with service(shards=1) as server:
                def ask():
                    with client_for(server) as svc:
                        result = svc.query(**HAMMER_SPEC)
                        return canonical_json(result).encode(), svc.stats()
                first, _ = await in_thread(ask)
                server.pool.shutdown()
                server.pool.start()
                second, stats = await in_thread(ask)
                return first, second, stats

        first, second, stats = asyncio.run(scenario())
        assert first == second
        # The fresh worker lost the circuit; the pool re-shipped it.
        assert _counters(stats)["pool.reships"] >= 1
        assert _counters(stats).get("jobs.failed", 0) == 0

    def test_heartbeat_respawns_idle_killed_worker(self):
        async def scenario():
            async with service(shards=1, heartbeat=0.1) as server:
                def warm():
                    with client_for(server) as svc:
                        job = svc.submit(**HAMMER_SPEC)
                        return svc.wait(job["id"], timeout=120)
                pid = (await in_thread(warm))["worker"]["pid"]
                os.kill(pid, signal.SIGKILL)
                # No job arrives; only the heartbeat can notice.
                for _ in range(200):
                    if server.pool.respawns[0] >= 1:
                        break
                    await asyncio.sleep(0.05)

                def rerun():
                    with client_for(server) as svc:
                        job = svc.submit(**HAMMER_SPEC)
                        status = svc.wait(job["id"], timeout=120)
                        return status, svc.stats()
                status, stats = await in_thread(rerun)
                return pid, status, stats

        pid, status, stats = asyncio.run(scenario())
        counters = _counters(stats)
        assert counters["worker.heartbeat_failures"] >= 1
        assert counters["worker.respawns"] >= 1
        assert status["state"] == "done"
        assert status["worker"]["pid"] != pid
        assert counters.get("jobs.failed", 0) == 0

    def test_injected_crash_schedule_is_deterministic(self):
        """The CI chaos combo, pinned: seed 7 crashes exec arrival 4."""
        plan = FaultPlan.parse("worker_exec:crash@0.2", seed=7)

        async def scenario():
            async with service(shards=1, faults=plan) as server:
                def work():
                    payloads = []
                    with client_for(server) as svc:
                        for _ in range(6):
                            payloads.append(canonical_json(
                                svc.query(**HAMMER_SPEC)
                            ).encode())
                        return payloads, svc.stats()
                return await in_thread(work)

        payloads, stats = asyncio.run(scenario())
        assert len(set(payloads)) == 1
        counters = _counters(stats)
        # Exactly one crash (5th exec in the first worker incarnation;
        # the respawned worker replays its schedule from arrival 0 and
        # survives), one respawn, one requeue -- every run, same story.
        assert counters["worker.crashes"] == 1
        assert counters["worker.respawns"] == 1
        assert counters["worker.retries"] == 1
        assert counters["pool.jobs"] == 6
        assert counters.get("jobs.failed", 0) == 0


class TestDegradation:
    def test_spawn_crash_loop_degrades_to_in_process(self):
        plan = FaultPlan.parse("worker_spawn:crash@1", seed=7)

        async def scenario():
            async with service(shards=1, faults=plan,
                               heartbeat=0) as server:
                def work():
                    payloads = []
                    with client_for(server) as svc:
                        for _ in range(3):
                            payloads.append(canonical_json(
                                svc.query(**RUN_SPEC)
                            ).encode())
                        return payloads, svc.stats(), svc.health()
                return await in_thread(work)

        payloads, stats, health = asyncio.run(scenario())
        # Correct answers, reduced throughput: every job fell back to
        # an in-process run with bytes identical to a healthy server's.
        assert set(payloads) == {_clean_payload(json.dumps(RUN_SPEC))}
        counters = _counters(stats)
        assert counters["jobs.fallback_sync"] == 3
        assert counters["worker.shards_failed"] == 1
        assert counters.get("jobs.failed", 0) == 0
        assert stats["health"] == "degraded"
        assert stats["pool"]["degraded"] is True
        assert health["ok"] is True  # degraded still serves
        assert health["status"] == "degraded"

    def test_drain_finishes_running_jobs_and_503s_new_ones(self):
        async def scenario():
            async with service() as server:
                def start_job():
                    with client_for(server) as svc:
                        return svc.submit(**HAMMER_SPEC)["id"]
                job_id = await in_thread(start_job)
                server.begin_drain()

                def during_drain():
                    with client_for(server, max_wait=0) as svc:
                        health = svc.health()
                        try:
                            svc.submit(program="bell")
                            rejection = None
                        except ServiceClientError as exc:
                            rejection = exc
                        status = svc.wait(job_id, timeout=120)
                        return health, rejection, status, svc.stats()
                health, rejection, status, stats = await in_thread(
                    during_drain
                )
                # Grace-period drain closes the listener once idle.
                await server.drain(grace=10.0)

                def refused():
                    try:
                        with client_for(server, max_wait=0,
                                        retries=0) as svc:
                            svc.health()
                    except OSError as exc:
                        return exc
                    return None
                return health, rejection, status, stats, \
                    await in_thread(refused)

        health, rejection, status, stats, refused = asyncio.run(scenario())
        assert health["ok"] is False
        assert health["status"] == "draining"
        assert rejection is not None
        assert rejection.status == 503
        assert rejection.retry_after == 1.0
        assert status["state"] == "done"  # admitted work still finished
        assert _counters(stats)["jobs.rejected_draining"] == 1
        assert _counters(stats)["drains"] == 1
        assert refused is not None


class TestFaultMatrix:
    """Every (point, mode) combo, deterministic under seed 7.

    The invariant is uniform: requests may get slower, never wrong --
    each faulted workload must succeed end-to-end with bytes identical
    to a fault-free server's, leaving the expected evidence counter.
    """

    RUN_COMBOS = [
        ("worker_spawn:crash@once", "worker.retries"),
        ("worker_spawn:delay@once", "faults.injected"),
        ("worker_exec:crash@0.3", "worker.respawns"),
        ("worker_exec:corrupt@0.5", "worker.retries"),
        ("worker_exec:delay@0.5", None),  # worker-side slow-down only
        ("ipc_send:crash@0.3", "worker.retries"),
        ("ipc_send:delay@0.3", "faults.injected"),
        ("ipc_recv:crash@0.3", "worker.retries"),
        ("ipc_recv:delay@0.5", "faults.injected"),
    ]

    @pytest.mark.parametrize("plan_spec,evidence",
                             RUN_COMBOS, ids=[c[0] for c in RUN_COMBOS])
    def test_worker_and_ipc_faults(self, plan_spec, evidence):
        plan = FaultPlan.parse(plan_spec, seed=7)

        async def scenario():
            async with service(shards=1, faults=plan) as server:
                def work():
                    payloads = []
                    with client_for(server) as svc:
                        for _ in range(5):
                            payloads.append(canonical_json(
                                svc.query(**RUN_SPEC)
                            ).encode())
                        return payloads, svc.stats()
                return await in_thread(work)

        payloads, stats = asyncio.run(scenario())
        assert set(payloads) == {_clean_payload(json.dumps(RUN_SPEC))}
        counters = _counters(stats)
        assert counters.get("jobs.failed", 0) == 0
        assert counters.get("jobs.fallback_sync", 0) == 0
        if evidence is not None:
            assert counters.get(evidence, 0) >= 1, (plan_spec, counters)

    DISK_COMBOS = [
        ("disk_read:corrupt@0.5", "cache.quarantined"),
        ("disk_read:delay@0.5", "faults.injected"),
        ("disk_read:crash@0.5", "cache.disk_read_errors"),
        ("disk_write:crash@0.5", "cache.disk_write_errors"),
        ("disk_write:delay@0.5", "faults.injected"),
    ]

    def _disk_lifetime(self, cache_dir, faults=None):
        specs = [
            {"program": "bwt", "params": {"n": n}, "action": "count"}
            for n in (2, 3, 4, 5)
        ]

        async def scenario():
            async with service(cache_dir=str(cache_dir),
                               faults=faults) as server:
                def work():
                    payloads = []
                    with client_for(server) as svc:
                        for spec in specs:
                            payloads.append(canonical_json(
                                svc.query(**spec)
                            ).encode())
                        return payloads, svc.stats()
                return await in_thread(work)

        return asyncio.run(scenario())

    @pytest.mark.parametrize("plan_spec,evidence",
                             DISK_COMBOS, ids=[c[0] for c in DISK_COMBOS])
    def test_disk_faults(self, plan_spec, evidence, tmp_path):
        plan = FaultPlan.parse(plan_spec, seed=7)
        if plan_spec.startswith("disk_write"):
            # Writes only happen on cold builds: fault the first
            # lifetime, then prove a clean warm-start over whatever
            # subset landed on disk still answers identically.
            baseline, _ = self._disk_lifetime(tmp_path / "clean")
            faulted, stats = self._disk_lifetime(tmp_path / "hot", plan)
            healed, _ = self._disk_lifetime(tmp_path / "hot")
            assert faulted == baseline == healed
        else:
            # Reads only happen on warm starts: populate clean, then
            # re-read the same four entries through the fault.
            baseline, _ = self._disk_lifetime(tmp_path)
            faulted, stats = self._disk_lifetime(tmp_path, plan)
            assert faulted == baseline
        counters = _counters(stats)
        assert counters.get("jobs.failed", 0) == 0
        assert counters.get(evidence, 0) >= 1, (plan_spec, counters)

    ADMISSION_COMBOS = [
        ("job_admission:reject@0.3", 429),
        ("job_admission:crash@0.3", 503),
        ("job_admission:corrupt@0.3", 429),
        ("job_admission:delay@0.3", None),
    ]

    @pytest.mark.parametrize("plan_spec,shed_status", ADMISSION_COMBOS,
                             ids=[c[0] for c in ADMISSION_COMBOS])
    def test_admission_faults(self, plan_spec, shed_status):
        plan = FaultPlan.parse(plan_spec, seed=7)

        async def scenario():
            async with service(faults=plan) as server:
                def work():
                    payloads = []
                    with client_for(server, backoff=0.05) as svc:
                        for _ in range(5):
                            payloads.append(canonical_json(
                                svc.query(**COUNT_SPEC)
                            ).encode())
                        return payloads, svc.stats()
                return await in_thread(work)

        payloads, stats = asyncio.run(scenario())
        assert set(payloads) == {_clean_payload(json.dumps(COUNT_SPEC))}
        counters = _counters(stats)
        assert counters["faults.injected"] >= 1
        assert counters.get("jobs.failed", 0) == 0
        if shed_status is not None:
            # Shed requests surfaced as retryable statuses the client
            # absorbed; nothing reached the job table for them.
            fired = stats["faults"]["fired"]
            assert sum(fired.values()) >= 1, fired
