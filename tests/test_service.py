"""Compile-service suite: cache keying, concurrency, HTTP, determinism.

The load-bearing claims, each tested against a real server on an
ephemeral port (no mocked transports):

* **Single compile** -- any number of clients submitting the same
  circuit (defaulted or spelled-out params, sync or async, compile or
  run) cause exactly one pipeline build; the obs counters are the proof.
* **Deterministic runs** -- one seed, one byte-stream: canonical-JSON
  run results are identical across worker shards, shard counts, and
  server restarts (the disk warm-start path included).
* **Bounded load** -- full queues answer 429 + Retry-After instead of
  accepting unbounded work; overlong jobs die with a timeout error
  while the server keeps serving.
"""

from __future__ import annotations

import asyncio
import importlib
import json
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager

import pytest

from repro.service.cache import CompileCache
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.digest import canonical_json, digest_text, spec_digest
from repro.service.jobs import canonical_run_options
from repro.service.metrics import LatencyRing, ServiceMetrics, percentile
from repro.service.registry import ServiceError, canonical_spec
from repro.service.server import CHUNK_SIZE, ServiceServer


@pytest.fixture(autouse=True)
def _fresh_compile_pool():
    """Isolate the process-wide digest-keyed stream pool per test.

    Every in-process "server" here shares one interpreter with the
    tests before it; clearing the pool keeps single-compile counter
    assertions honest.
    """
    importlib.import_module("repro.transform.inline")._DIGEST_POOL.clear()
    yield


@asynccontextmanager
async def service(**kwargs):
    """A started server on an ephemeral port, stopped on exit."""
    kwargs.setdefault("shards", 1)
    server = ServiceServer(port=0, **kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.stop()


async def in_thread(fn, *args):
    """Run blocking client code off the server's event loop."""
    return await asyncio.get_running_loop().run_in_executor(None, fn, *args)


def client_for(server: ServiceServer) -> ServiceClient:
    return ServiceClient("127.0.0.1", server.port, timeout=120)


# ---------------------------------------------------------------------------
# Pure pieces: spec canonicalization, digests, metrics
# ---------------------------------------------------------------------------


class TestCanonicalSpec:
    def test_defaults_fill_to_the_same_digest(self):
        implicit = canonical_spec({"program": "bwt"})
        explicit = canonical_spec({
            "program": "bwt",
            "params": {"n": 4, "s": 1, "t": 0.1, "oracle": "orthodox"},
        })
        assert implicit == explicit
        assert spec_digest(implicit) == spec_digest(explicit)

    def test_per_job_keys_stay_out_of_the_cache_key(self):
        plain = canonical_spec({"program": "bell"})
        decorated = canonical_spec({
            "program": "bell", "action": "run",
            "run": {"shots": 64, "seed": 1}, "sync": True,
        })
        assert spec_digest(plain) == spec_digest(decorated)

    def test_any_compile_relevant_key_changes_the_digest(self):
        base = spec_digest(canonical_spec({"program": "bwt"}))
        for variant in (
            {"program": "bwt", "params": {"n": 5}},
            {"program": "bwt", "transform": "binary"},
            {"program": "bwt", "optimize": True},
            {"program": "bwt", "optimize": ["cancel"]},
        ):
            assert spec_digest(canonical_spec(variant)) != base, variant

    def test_rejections(self):
        cases = [
            ({"program": "no-such"}, 404, "unknown program"),
            ({"program": "bwt", "params": {"bogus": 1}}, 400, "unknown param"),
            ({"program": "bwt", "params": {"n": 0}}, 400, ">="),
            ({"program": "bwt", "params": {"n": "four"}}, 400, "integer"),
            ({"program": "bwt", "transform": "nope"}, 400, "transform"),
            ({"program": "bwt", "optimize": ["nope"]}, 400, "pass"),
            ({"program": "bwt", "optimize": "yes"}, 400, "optimize"),
            ({"program": "bell", "circuit": "x"}, 400, "exactly one"),
            ({}, 400, "exactly one"),
        ]
        for spec, status, fragment in cases:
            with pytest.raises(ServiceError) as excinfo:
                canonical_spec(spec)
            assert excinfo.value.status == status, spec
            assert fragment in str(excinfo.value), spec

    def test_run_option_validation(self):
        ok = canonical_run_options({"shots": 8, "seed": 1,
                                    "in_values": {"0": True}})
        assert ok["in_values"] == {0: True}
        for bad in (
            {"shots": 0}, {"shots": -3}, {"shots": True},
            {"seed": "x"}, {"bogus": 1}, {"in_values": {"q": True}},
            {"in_values": {"0": 1}}, "not-a-dict",
        ):
            with pytest.raises(ServiceError):
                canonical_run_options(bad)

    def test_digest_domains_are_disjoint(self):
        assert digest_text("x", domain="a") != digest_text("x", domain="b")
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestMetrics:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.99) == 0.0
        assert percentile([5.0], 0.99) == 5.0
        values = [float(i) for i in range(101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.99) == 99.0

    def test_latency_ring_window(self):
        ring = LatencyRing(size=4)
        for i in range(10):
            ring.record(float(i))
        summary = ring.summary()
        assert summary["count"] == 10  # lifetime count survives eviction
        assert summary["max_ms"] == 9.0  # window keeps the recent four
        assert ring.samples.maxlen == 4

    def test_counters_mirror_into_obs_sessions(self):
        from repro import obs

        metrics = ServiceMetrics()
        metrics.inc("test.counter", 2)  # outside any session: local only
        with obs.capture() as rec:
            metrics.inc("test.counter", 3)
        assert metrics.counters["test.counter"] == 5
        assert rec.counters["service.test.counter"] == 3


# ---------------------------------------------------------------------------
# The cache layer: single-flight under concurrency
# ---------------------------------------------------------------------------


class TestCompileCacheSingleFlight:
    def test_concurrent_gets_build_once(self):
        async def hammer():
            metrics = ServiceMetrics()
            cache = CompileCache(metrics)
            cspec = canonical_spec({"program": "bell"})
            digest = spec_digest(cspec)
            results = await asyncio.gather(*[
                cache.get(digest, cspec) for _ in range(8)
            ])
            return metrics, results

        metrics, results = asyncio.run(hammer())
        assert metrics.counters["cache.misses"] == 1
        assert metrics.counters.get("cache.coalesced", 0) == 7
        entries = {id(entry) for entry, _hit in results}
        assert len(entries) == 1  # everyone got the same object
        assert sum(1 for _entry, hit in results if not hit) == 1

    def test_lru_eviction_bounds_the_cache(self):
        async def fill():
            cache = CompileCache(ServiceMetrics(), maxsize=2)
            for n in (2, 3, 4):
                cspec = canonical_spec({"program": "bwt", "params": {"n": n}})
                await cache.get(spec_digest(cspec), cspec)
            return cache

        cache = asyncio.run(fill())
        assert len(cache.entries) == 2

    def test_failed_build_is_not_cached(self):
        async def attempt():
            cache = CompileCache(ServiceMetrics())
            cspec = dict(canonical_spec({"program": "bell"}),
                         circuit="not quipper at all")
            del cspec["program"], cspec["params"]
            digest = spec_digest(cspec)
            with pytest.raises(Exception):
                await cache.get(digest, cspec)
            return cache

        cache = asyncio.run(attempt())
        assert not cache.entries and not cache._pending


# ---------------------------------------------------------------------------
# HTTP end to end
# ---------------------------------------------------------------------------


class TestHttpEndpoints:
    def test_introspection_and_sync_queries(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        health = svc.health()
                        programs = svc.programs()
                        count_a = svc.query(program="bwt", action="count")
                        count_b = svc.query(
                            program="bwt", action="count",
                            params={"n": 4, "s": 1, "t": 0.1,
                                    "oracle": "orthodox"},
                        )
                        depth = svc.query(program="bell", action="depth")
                        stats = svc.stats()
                        profile = svc.profile()
                        return (health, programs, count_a, count_b, depth,
                                stats, profile)
                return await in_thread(work)

        health, programs, count_a, count_b, depth, stats, profile = (
            asyncio.run(scenario())
        )
        assert health["ok"] is True and "version" in health
        assert {"bell", "bwt", "tf"} <= set(programs["programs"])
        assert count_a == count_b and count_a["total"] > 0
        assert depth["depth"] >= 2
        # Defaulted and explicit params shared one compile.
        assert stats["service"]["counters"]["cache.misses"] == 2  # bwt+bell
        assert stats["service"]["counters"]["cache.hits"] >= 1
        assert stats["service"]["latency"]["hit"]["count"] >= 1
        assert profile["counters"]["cache.compiled_stream.misses"] == 2

    def test_async_job_lifecycle(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        job = svc.submit(program="bell", action="compile")
                        assert job["state"] in ("queued", "running", "done")
                        done = svc.wait(job["id"])
                        result = svc.result(job["id"])
                        missing = None
                        try:
                            svc.status("j99999999")
                        except ServiceClientError as exc:
                            missing = exc.status
                        return done, result, missing
                return await in_thread(work)

        done, result, missing = asyncio.run(scenario())
        assert done["state"] == "done" and done["cache_hit"] is False
        assert done["queue_wait_ms"] >= 0 and done["exec_ms"] >= 0
        assert result["result"]["width"] == 2
        assert result["result"]["gates_inlined"] >= 3
        assert missing == 404

    def test_error_statuses_and_bodies(self):
        async def scenario():
            async with service() as server:
                def work():
                    statuses = {}
                    with client_for(server) as svc:
                        for key, spec in [
                            ("unknown_program", {"program": "zzz"}),
                            ("bad_param",
                             {"program": "bwt", "params": {"n": 0}}),
                            ("bad_action",
                             {"program": "bell", "action": "explode"}),
                            ("bad_run", {"program": "bell", "action": "run",
                                         "run": {"shots": -1}}),
                        ]:
                            try:
                                svc.query(**spec)
                            except ServiceClientError as exc:
                                statuses[key] = exc.status
                        # Sync pipeline refusal: unencodable QASM is 400.
                        try:
                            svc.query(program="bwt", action="qasm")
                        except ServiceClientError as exc:
                            statuses["qasm_refusal"] = exc.status
                    return statuses
                return await in_thread(work)

        statuses = asyncio.run(scenario())
        assert statuses == {
            "unknown_program": 404, "bad_param": 400, "bad_action": 400,
            "bad_run": 400, "qasm_refusal": 400,
        }

    def test_backpressure_answers_429_with_retry_after(self):
        async def scenario():
            async with service(max_pending=0) as server:
                def work():
                    with client_for(server) as svc:
                        try:
                            svc.submit(program="bell")
                        except ServiceClientError as exc:
                            return exc
                return await in_thread(work)

        exc = asyncio.run(scenario())
        assert exc.status == 429
        assert exc.retry_after == 1.0

    def test_large_bodies_stream_chunked(self):
        async def scenario():
            async with service() as server:
                def work():
                    with client_for(server) as svc:
                        out = svc.query(program="bwt", transform="binary",
                                        action="quipper")
                        return out, svc.stats()
                return await in_thread(work)

        out, stats = asyncio.run(scenario())
        assert len(out["text"]) > CHUNK_SIZE
        assert stats["service"]["counters"]["http.chunked_responses"] >= 1

    def test_timeout_kills_the_job_not_the_server(self):
        async def scenario():
            async with service(job_timeout=0.001) as server:
                def work():
                    with client_for(server) as svc:
                        job = svc.submit(program="bwt", action="compile")
                        done = svc.wait(job["id"], timeout=30)
                        result_status = None
                        try:
                            svc.result(job["id"])
                        except ServiceClientError as exc:
                            result_status = exc.status
                        health = svc.health()
                        return done, result_status, health
                return await in_thread(work)

        done, result_status, health = asyncio.run(scenario())
        assert done["state"] == "error" and "timeout" in done["error"]
        assert result_status == 504
        assert health["ok"] is True

    def test_cancel_queued_job(self):
        async def scenario():
            async with service(max_running=1) as server:
                def work():
                    with client_for(server) as svc:
                        # The first job occupies the single execution slot
                        # long enough for the second to be verifiably
                        # queued when we cancel it.
                        blocker = svc.submit(program="bwt",
                                             params={"n": 5}, action="count")
                        victim = svc.submit(program="bell", action="depth")
                        cancelled = svc.cancel(victim["id"])
                        final = svc.wait(victim["id"], timeout=30)
                        svc.wait(blocker["id"], timeout=60)
                        return cancelled, final
                return await in_thread(work)

        cancelled, final = asyncio.run(scenario())
        assert final["state"] == "cancelled"


# ---------------------------------------------------------------------------
# The acceptance scenario: concurrent clients, one compile, stable bytes
# ---------------------------------------------------------------------------

HAMMER_SPEC = {
    "program": "bwt", "params": {"n": 3}, "action": "run",
    "run": {"backend": "statevector", "shots": 32, "seed": 1234},
}


def _hammer(server: ServiceServer, clients: int) -> list[bytes]:
    """N threads, each its own connection, all submitting one circuit."""
    def one_client(i: int) -> bytes:
        with client_for(server) as svc:
            if i % 2:  # odd clients take the async path
                job = svc.submit(**HAMMER_SPEC)
                status = svc.wait(job["id"], timeout=120)
                assert status["state"] == "done", status
                result = svc.result(job["id"])["result"]
            else:  # even clients take the sync fast path
                result = svc.query(**HAMMER_SPEC)
        return canonical_json(result).encode()

    with ThreadPoolExecutor(max_workers=clients) as pool:
        return list(pool.map(one_client, range(clients)))


class TestConcurrentSingleCompile:
    def test_many_clients_one_compile_identical_bytes(self):
        async def scenario():
            async with service(shards=2, max_running=8) as server:
                payloads = await in_thread(_hammer, server, 6)

                def collect():
                    with client_for(server) as svc:
                        return svc.stats(), svc.profile()
                stats, profile = await in_thread(collect)
                return payloads, stats, profile

        payloads, stats, profile = asyncio.run(scenario())
        # Everyone saw byte-identical seeded results.
        assert len(set(payloads)) == 1
        counts = json.loads(payloads[0])["counts"]
        assert sum(counts.values()) == 32
        # ... and the service compiled the circuit exactly once: one
        # service-cache miss, one pipeline inline, everything else hits.
        assert stats["service"]["counters"]["cache.misses"] == 1
        assert stats["service"]["counters"]["cache.hits"] == 5
        assert profile["counters"]["cache.compiled_stream.misses"] == 1
        assert stats["service"]["counters"]["pool.jobs"] == 6
        assert stats["service"]["latency"]["run"]["count"] == 6

    def test_shard_affinity_reuses_one_warm_worker(self):
        async def scenario():
            async with service(shards=2) as server:
                def work():
                    with client_for(server) as svc:
                        first = svc.query(**HAMMER_SPEC)
                        job = svc.submit(**HAMMER_SPEC)
                        status = svc.wait(job["id"], timeout=120)
                    return first, status
                return await in_thread(work)

        _first, status = asyncio.run(scenario())
        assert status["worker"]["program_warm"] is True
        assert status["worker"]["stream_warm"] is True


class TestRestartDeterminism:
    def test_disk_warm_start_and_identical_bytes(self, tmp_path):
        cache_dir = tmp_path / "compiled"

        async def lifetime():
            async with service(cache_dir=str(cache_dir)) as server:
                def work():
                    with client_for(server) as svc:
                        result = svc.query(**HAMMER_SPEC)
                        return canonical_json(result).encode(), svc.stats()
                return await in_thread(work)

        first_bytes, first_stats = asyncio.run(lifetime())
        assert first_stats["service"]["counters"].get("cache.disk_hits", 0) == 0
        assert list(cache_dir.glob("*.quip")), "compile was not persisted"

        second_bytes, second_stats = asyncio.run(lifetime())
        assert second_bytes == first_bytes
        assert second_stats["service"]["counters"]["cache.disk_hits"] == 1

    def test_shard_count_does_not_change_results(self):
        async def run_with(shards: int):
            async with service(shards=shards) as server:
                def work():
                    with client_for(server) as svc:
                        return canonical_json(
                            svc.query(**HAMMER_SPEC)
                        ).encode()
                return await in_thread(work)

        assert asyncio.run(run_with(1)) == asyncio.run(run_with(3))
