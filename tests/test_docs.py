"""Documentation executes and stays healthy.

Three gates, mirroring CI's ``docs-build`` job:

* every ``python`` code block in ``docs/tutorial.md`` runs, top to
  bottom in one shared namespace, so the cookbook cannot rot;
* every relative Markdown link (and ``#anchor``) in the docs tree and
  the README resolves;
* the public API surface carries full docstring coverage
  (``tools/check_docs.py`` defines the surface).
"""

from __future__ import annotations

import contextlib
import io
import pathlib
import re
import sys

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_docs  # noqa: E402  (tools/ is not a package)

_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _tutorial_blocks() -> list[str]:
    text = (REPO / "docs" / "tutorial.md").read_text()
    blocks = _BLOCK.findall(text)
    assert blocks, "docs/tutorial.md lost its python code blocks"
    return blocks


def test_tutorial_code_blocks_execute():
    """The whole cookbook runs as one program, block by block."""
    namespace: dict = {"__name__": "docs.tutorial"}
    for index, block in enumerate(_tutorial_blocks()):
        try:
            with contextlib.redirect_stdout(io.StringIO()):
                exec(compile(block, f"docs/tutorial.md[block {index}]",
                             "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"tutorial block {index} failed ({exc!r}):\n{block}"
            )


def test_intra_doc_links_resolve():
    assert check_docs.check_links(REPO) == []


def test_public_api_docstring_coverage():
    assert check_docs.check_docstrings(REPO) == []


def test_performance_handbook_names_every_baseline():
    """Every committed baseline JSON has a row in docs/performance.md."""
    assert check_docs.check_baseline_freshness(REPO) == []
