"""Tests for circuit lifting: CBool, CWord/CFix, templates, reversibility."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build, qubit
from repro.core.errors import LiftingError
from repro.core.gates import Init, Term
from repro.datatypes import FPRealM, IntM, fpreal_shape, qdint_shape
from repro.lifting import (
    CFix,
    CWord,
    Trace,
    all_of,
    any_of,
    bool_xor,
    build_circuit,
    classical_to_reversible,
    cond,
    unpack,
)
from repro.sim import run_classical_generic


class TestCBool:
    def test_constant_folding(self):
        trace = Trace()
        a = trace.new_input()
        assert (a & False) is trace.const(False)
        assert (a & True) is a
        assert (a | True) is trace.const(True)
        assert (a | False) is a
        assert (a ^ False) is a
        assert (~~a) is a

    def test_idempotence_folding(self):
        trace = Trace()
        a = trace.new_input()
        assert (a & a) is a
        assert (a | a) is a
        assert (a ^ a) is trace.const(False)

    def test_sharing(self):
        trace = Trace(share=True)
        a, b = trace.new_input(), trace.new_input()
        assert (a & b) is (b & a)  # hash-consed, commutative key

    def test_no_sharing_mode(self):
        trace = Trace(share=False)
        a, b = trace.new_input(), trace.new_input()
        assert (a & b) is not (a & b)

    def test_branching_raises(self):
        trace = Trace()
        a = trace.new_input()
        with pytest.raises(LiftingError):
            if a:
                pass

    def test_cond_on_parameter(self):
        assert cond(True, "t", "e") == "t"
        assert cond(False, "t", "e") == "e"

    def test_cross_trace_rejected(self):
        t1, t2 = Trace(), Trace()
        a, b = t1.new_input(), t2.new_input()
        with pytest.raises(LiftingError):
            a & b

    def test_bool_xor_plain(self):
        assert bool_xor(True, False) is True
        assert bool_xor(True, True) is False


class TestCWord:
    @staticmethod
    def _eval(trace, word, assignment):
        def value_of(node):
            if node.op == "const":
                return node.value
            if node.op == "in":
                return assignment[node.value]
            args = [value_of(a) for a in node.args]
            return {
                "and": lambda: args[0] and args[1],
                "or": lambda: args[0] or args[1],
                "xor": lambda: args[0] != args[1],
                "not": lambda: not args[0],
            }[node.op]()

        total = 0
        for i, bit_node in enumerate(word.bits):
            total |= int(value_of(bit_node)) << i
        return total

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_add(self, a, b):
        trace = Trace()
        inputs = [trace.new_input() for _ in range(16)]
        wa = CWord(trace, inputs[:8])
        wb = CWord(trace, inputs[8:])
        assignment = [bool((a >> i) & 1) for i in range(8)] + [
            bool((b >> i) & 1) for i in range(8)
        ]
        result = self._eval(trace, wa + wb, assignment)
        assert result == (a + b) % 256

    @given(
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=63),
    )
    def test_mul(self, a, b):
        trace = Trace()
        inputs = [trace.new_input() for _ in range(12)]
        wa = CWord(trace, inputs[:6])
        wb = CWord(trace, inputs[6:])
        assignment = [bool((a >> i) & 1) for i in range(6)] + [
            bool((b >> i) & 1) for i in range(6)
        ]
        assert self._eval(trace, wa * wb, assignment) == (a * b) % 64

    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    def test_comparisons(self, a, b):
        trace = Trace()
        inputs = [trace.new_input() for _ in range(16)]
        wa = CWord(trace, inputs[:8])
        wb = CWord(trace, inputs[8:])
        assignment = [bool((a >> i) & 1) for i in range(8)] + [
            bool((b >> i) & 1) for i in range(8)
        ]
        lt = CWord(trace, [wa.lt_unsigned(wb)])
        eq = CWord(trace, [wa.eq(wb)])
        assert self._eval(trace, lt, assignment) == int(a < b)
        assert self._eval(trace, eq, assignment) == int(a == b)

    def test_width_mismatch(self):
        trace = Trace()
        a = CWord(trace, [trace.new_input()])
        b = CWord(trace, [trace.new_input()] * 2)
        with pytest.raises(LiftingError):
            a + b


class TestTemplates:
    def test_classical_callability_preserved(self):
        @build_circuit
        def f(x, y):
            return bool_xor(x, y)

        assert f(True, False) is True

    def test_parity_circuit_structure(self):
        """The paper's 4-qubit parity figure: 2 scratch + 1 output."""

        @build_circuit
        def parity(bits):
            result = False
            for b in bits:
                result = bool_xor(b, result)
            return result

        def circ(qc, qs):
            out = unpack(parity)(qc, qs)
            return qs, out

        # Unshared templates leave their scratch wires live by design.
        bc, _ = build(circ, [qubit] * 4, on_extra="ignore")
        inits = sum(isinstance(g, Init) for g in bc.circuit.gates)
        assert inits == 3  # two scratch + one output
        assert bc.circuit.in_arity == 4
        assert bc.check() == 7  # 4 inputs + 3 ancillas

    def test_reversible_wrapper_is_clean(self):
        @build_circuit
        def f(bits):
            return all_of(bits)

        rev = classical_to_reversible(unpack(f))

        def circ(qc, qs, t):
            return rev(qc, qs, t)

        bc, _ = build(circ, [qubit] * 3, qubit)
        inits = sum(isinstance(g, Init) for g in bc.circuit.gates)
        terms = sum(isinstance(g, Term) for g in bc.circuit.gates)
        assert inits == terms  # every ancilla uncomputed

    @given(st.lists(st.booleans(), min_size=1, max_size=7),
           st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_lifted_parity_agrees(self, bits, t0):
        @build_circuit
        def parity(bs):
            result = False
            for b in bs:
                result = bool_xor(b, result)
            return result

        rev = classical_to_reversible(unpack(parity))

        def circ(qc, qs, t):
            return rev(qc, qs, t)

        qs, t = run_classical_generic(circ, bits, t0)
        assert qs == bits
        assert t == (t0 ^ (sum(bits) % 2 == 1))

    def test_reversible_self_inverse(self):
        """Applying the reversible oracle twice is the identity."""

        @build_circuit
        def f(bits):
            return any_of(bits)

        rev = classical_to_reversible(unpack(f))

        def circ(qc, qs, t):
            rev(qc, qs, t)
            rev(qc, qs, t)
            return qs, t

        rng = random.Random(0)
        for _ in range(6):
            bits = [rng.random() < 0.5 for _ in range(4)]
            t0 = rng.random() < 0.5
            qs, t = run_classical_generic(circ, bits, t0)
            assert qs == bits and t == t0

    def test_integer_template(self):
        @build_circuit
        def f(x):
            return x * x + x + 1

        rev = classical_to_reversible(unpack(f))

        def circ(qc, x, y):
            return rev(qc, x, y)

        for a in range(16):
            x, y = run_classical_generic(circ, IntM(a, 4), IntM(0, 4))
            assert int(y) == (a * a + a + 1) % 16
            assert int(x) == a

    def test_fixed_point_template(self):
        @build_circuit
        def f(x):
            return x * x

        rev = classical_to_reversible(unpack(f))

        def circ(qc, x, y):
            return rev(qc, x, y)

        for value in (0.0, 0.5, 1.25, -0.75):
            x, y = run_classical_generic(
                circ, FPRealM(value, 3, 8), FPRealM(0.0, 3, 8)
            )
            assert abs(float(y) - value * value) < 0.02

    def test_cond_in_template(self):
        @build_circuit
        def f(data):
            c, a, b = data
            return cond(c, a, b)

        rev = classical_to_reversible(unpack(f))

        def circ(qc, c, a, b, t):
            return rev(qc, (c, a, b), t)

        for c in (False, True):
            for a in (False, True):
                for b in (False, True):
                    (cc, aa, bb), t = run_classical_generic(
                        circ, c, a, b, False
                    )
                    assert t == (a if c else b)

    def test_share_reduces_gate_count(self):
        def make(share):
            @build_circuit(share=share)
            def f(bits):
                x = all_of(bits)
                y = all_of(bits)  # repeated subterm
                return x ^ y ^ any_of(bits)

            def circ(qc, qs):
                out = unpack(f)(qc, qs)
                return qs, out

            # Scratch wires stay live on purpose (sharing comparison).
            bc, _ = build(circ, [qubit] * 4, on_extra="ignore")
            return len(bc.circuit.gates)

        assert make(True) < make(False)

    def test_unpack_requires_template(self):
        with pytest.raises(LiftingError):
            unpack(lambda x: x)
