"""Serialization round-trip tests: Quipper-ASCII parsing and QASM export.

The core property is ``loads(dumps(bc)) == bc``: randomized circuits
exercising every gate constructor in :mod:`repro.core.gates` must
survive the text round-trip structurally intact, and a golden file pins
the concrete format for a hierarchical (boxed) circuit.
"""

from __future__ import annotations

import pathlib
import random

import pytest

from repro import build, qubit
from repro.core.circuit import BCircuit, Circuit
from repro.core.gates import (
    BoxCall,
    CDiscard,
    CGate,
    CInit,
    CNot,
    Comment,
    Control,
    CTerm,
    Discard,
    Gate,
    Init,
    Measure,
    NamedGate,
    Term,
)
from repro.core.wires import CLASSICAL, QUANTUM
from repro.io import AsciiParseError, dumps, load, loads
from repro.io.ascii_parser import decode_shape, encode_shape
from repro.output.ascii import format_bcircuit

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: Plain (non-parametrised) named gates from GATE_INFO, by arity.
_PLAIN_1 = ("X", "Y", "Z", "H", "not", "S", "T", "V", "E", "omega", "iX")
_PLAIN_2 = ("swap", "W")
#: Parametrised named gates, by arity.
_ROT_1 = ("Rx", "Ry", "Rz", "exp(-i%Z)", "R(2pi/%)", "rGate")
_ROT_2 = ("exp(-i%ZZ)",)
_CGATE_NAMES = ("and", "or", "xor", "eq")


# ---------------------------------------------------------------------------
# Randomized circuit generation
# ---------------------------------------------------------------------------


class _CircuitSampler:
    """Grow a random, wire-discipline-respecting flat circuit."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.live: dict[int, str] = {}
        self.next_wire = 0
        self.gates: list[Gate] = []

    def fresh(self, wtype: str) -> int:
        wire = self.next_wire
        self.next_wire += 1
        self.live[wire] = wtype
        return wire

    def pick_live(self, wtype: str, exclude: set[int] = frozenset()):
        pool = [
            w for w, t in self.live.items()
            if t == wtype and w not in exclude
        ]
        return self.rng.choice(pool) if pool else None

    def random_param(self) -> float | int:
        if self.rng.random() < 0.3:
            return self.rng.randrange(1, 16)
        # Arbitrary floats: repr round-trips them exactly.
        return self.rng.uniform(-7, 7)

    def random_controls(self, exclude: set[int]) -> tuple[Control, ...]:
        controls = []
        used = set(exclude)
        for _ in range(self.rng.randrange(3)):
            wtype = self.rng.choice((QUANTUM, CLASSICAL))
            wire = self.pick_live(wtype, used)
            if wire is None:
                continue
            used.add(wire)
            controls.append(
                Control(wire, positive=self.rng.random() < 0.6,
                        wire_type=wtype)
            )
        return tuple(controls)

    # -- one random gate per call -------------------------------------------

    def step(self) -> None:
        makers = [
            self._named, self._named, self._named,  # weighted towards gates
            self._init, self._cinit, self._term, self._cterm,
            self._discard, self._cdiscard, self._measure,
            self._cgate, self._cnot, self._comment,
        ]
        self.rng.choice(makers)()

    def _named(self) -> None:
        arity = self.rng.choice((1, 1, 2))
        q1 = self.pick_live(QUANTUM)
        if q1 is None:
            return
        if arity == 2:
            q2 = self.pick_live(QUANTUM, {q1})
            if q2 is None:
                return
            targets = (q1, q2)
            pool = _PLAIN_2 + _ROT_2
        else:
            targets = (q1,)
            pool = _PLAIN_1 + _ROT_1
        name = self.rng.choice(pool)
        param = self.random_param() if "%" in name or name.startswith(
            ("Rx", "Ry", "Rz", "rGate")
        ) else None
        self.gates.append(
            NamedGate(
                name=name,
                targets=targets,
                controls=self.random_controls(set(targets)),
                inverted=self.rng.random() < 0.25,
                param=param,
            )
        )

    def _init(self) -> None:
        self.gates.append(
            Init(self.fresh(QUANTUM), self.rng.random() < 0.5)
        )

    def _cinit(self) -> None:
        self.gates.append(
            CInit(self.fresh(CLASSICAL), self.rng.random() < 0.5)
        )

    def _term(self) -> None:
        wire = self.pick_live(QUANTUM)
        if wire is not None and len(self._quantum()) > 1:
            del self.live[wire]
            self.gates.append(Term(wire, self.rng.random() < 0.5))

    def _cterm(self) -> None:
        wire = self.pick_live(CLASSICAL)
        if wire is not None:
            del self.live[wire]
            self.gates.append(CTerm(wire, self.rng.random() < 0.5))

    def _discard(self) -> None:
        wire = self.pick_live(QUANTUM)
        if wire is not None and len(self._quantum()) > 1:
            del self.live[wire]
            self.gates.append(Discard(wire))

    def _cdiscard(self) -> None:
        wire = self.pick_live(CLASSICAL)
        if wire is not None:
            del self.live[wire]
            self.gates.append(CDiscard(wire))

    def _measure(self) -> None:
        wire = self.pick_live(QUANTUM)
        if wire is not None and len(self._quantum()) > 1:
            self.live[wire] = CLASSICAL
            self.gates.append(Measure(wire))

    def _cgate(self) -> None:
        a = self.pick_live(CLASSICAL)
        if a is None:
            return
        b = self.pick_live(CLASSICAL, {a})
        if b is None:
            name, inputs = "not", (a,)
        else:
            name, inputs = self.rng.choice(_CGATE_NAMES), (a, b)
        self.gates.append(
            CGate(name=name, target=self.fresh(CLASSICAL), inputs=inputs)
        )

    def _cnot(self) -> None:
        wire = self.pick_live(CLASSICAL)
        if wire is not None:
            self.gates.append(
                CNot(wire, controls=self.random_controls({wire}))
            )

    def _comment(self) -> None:
        labels = []
        for wire in self.rng.sample(
            list(self.live), k=min(2, len(self.live))
        ):
            labels.append((wire, self.live[wire], f"w{wire}"))
        self.gates.append(
            Comment(
                text=self.rng.choice(("checkpoint", "ENTER: phase 2", "")),
                labels=tuple(labels),
                inverted=self.rng.random() < 0.2,
            )
        )

    def _quantum(self) -> list[int]:
        return [w for w, t in self.live.items() if t == QUANTUM]


def random_bcircuit(seed: int, n_gates: int = 30) -> BCircuit:
    rng = random.Random(seed)
    sampler = _CircuitSampler(rng)
    inputs = []
    for _ in range(rng.randint(2, 4)):
        inputs.append((sampler.fresh(QUANTUM), QUANTUM))
    for _ in range(rng.randint(0, 2)):
        inputs.append((sampler.fresh(CLASSICAL), CLASSICAL))
    for _ in range(n_gates):
        sampler.step()
    outputs = tuple(sampler.live.items())
    bc = BCircuit(Circuit(tuple(inputs), sampler.gates, outputs))
    bc.check()  # the generator must respect wire discipline itself
    return bc


class TestRandomizedRoundTrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_round_trip_identity(self, seed):
        bc = random_bcircuit(seed)
        assert loads(dumps(bc)) == bc

    def test_every_gate_constructor_is_covered(self):
        seen = set()
        for seed in range(25):
            for gate in random_bcircuit(seed).circuit.gates:
                seen.add(type(gate))
        expected = {
            NamedGate, Init, Term, Discard, CInit, CTerm, CDiscard,
            Measure, CGate, CNot, Comment,
        }
        assert expected <= seen  # BoxCall covered by the boxed tests

    def test_named_gate_variants_are_covered(self):
        named = [
            g
            for seed in range(25)
            for g in random_bcircuit(seed).circuit.gates
            if isinstance(g, NamedGate)
        ]
        assert any(g.inverted for g in named)
        assert any(g.param is not None for g in named)
        assert any(isinstance(g.param, float) for g in named)
        assert any(
            not c.positive for g in named for c in g.controls
        )
        assert any(
            c.wire_type == CLASSICAL for g in named for c in g.controls
        )

    def test_comment_label_containing_separator(self):
        bc = BCircuit(
            Circuit(
                inputs=((0, QUANTUM),),
                gates=[
                    Comment("note", labels=((0, QUANTUM, "first, second"),))
                ],
                outputs=((0, QUANTUM),),
            )
        )
        assert loads(dumps(bc)) == bc

    def test_plain_printer_output_also_parses(self, tmp_path):
        # Text without Shape: lines (print_generic capture) still loads.
        bc = random_bcircuit(3)
        parsed = loads(format_bcircuit(bc))
        assert parsed.circuit == bc.circuit


class TestBoxedRoundTrip:
    @staticmethod
    def _boxed_circuit() -> BCircuit:
        def inner(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        def outer(qc, a, b, c):
            qc.box("bell", inner, a, b)
            qc.box("bell", inner, b, c)
            with qc.controls(a):
                qc.box("bell", inner, b, c)
            qc.reverse_endo(inner, a, b)
            return a, b, c

        return build(outer, qubit, qubit, qubit)[0]

    def test_namespace_survives_without_inlining(self):
        bc = self._boxed_circuit()
        parsed = loads(dumps(bc))
        assert parsed == bc
        assert set(parsed.namespace) == set(bc.namespace)
        assert any(
            isinstance(g, BoxCall) for g in parsed.circuit.gates
        )

    def test_inverted_and_controlled_calls_round_trip(self):
        from repro import reverse_bcircuit

        bc = reverse_bcircuit(self._boxed_circuit())
        parsed = loads(dumps(bc))
        assert parsed == bc
        calls = [
            g for g in parsed.circuit.gates if isinstance(g, BoxCall)
        ]
        assert any(g.inverted for g in calls)
        assert any(g.controls for g in calls)

    def test_repeated_box_round_trips(self):
        def step(qc, a, b):
            qc.qnot(b, controls=a)
            qc.hadamard(a)
            return a, b

        def outer(qc, a, b):
            qc.box("step", step, a, b, repetitions=5)
            return a, b

        bc = build(outer, qubit, qubit)[0]
        parsed = loads(dumps(bc))
        assert parsed == bc
        call = next(
            g for g in parsed.circuit.gates if isinstance(g, BoxCall)
        )
        assert call.repetitions == 5

    def test_golden_file(self, tmp_path):
        bc = self._boxed_circuit()
        golden = GOLDEN_DIR / "boxed_bell.quip"
        assert dumps(bc) == golden.read_text()
        assert load(golden) == bc

    def test_dump_load_files(self, tmp_path):
        from repro.io import dump

        bc = self._boxed_circuit()
        path = tmp_path / "circuit.quip"
        dump(bc, path)
        assert load(path) == bc


class TestShapeCodec:
    @pytest.mark.parametrize(
        "shape",
        [
            None,
            (),
            [],
            {},
            {"a": None, "b": ()},
            (None, [None, (None,)]),
            3,
            True,
            "label",
            {"k": 2.5},
        ],
    )
    def test_round_trip(self, shape):
        assert decode_shape(encode_shape(shape)) == shape

    def test_wire_shapes(self):
        from repro.core.wires import Bit, Qubit

        text = encode_shape((Qubit(3), Bit(4)))
        q, b = decode_shape(text)
        assert isinstance(q, Qubit) and q.wire_id == 3
        assert isinstance(b, Bit) and b.wire_id == 4


class TestParserErrors:
    def test_rejects_garbage_gate_line(self):
        with pytest.raises(AsciiParseError):
            loads("Inputs: 0:Qubit\nFrobnicate(0)\nOutputs: 0:Qubit")

    def test_rejects_undefined_subroutine(self):
        text = (
            "Inputs: 0:Qubit\n"
            'Subroutine["ghost"](0) -> (0)\n'
            "Outputs: 0:Qubit"
        )
        with pytest.raises(AsciiParseError):
            loads(text)

    def test_rejects_gate_before_inputs(self):
        with pytest.raises(AsciiParseError):
            loads('QGate["H"](0)\nInputs: 0:Qubit\nOutputs: 0:Qubit')

    def test_check_catches_malformed_hierarchy(self):
        # A dead-wire reference parses syntactically but fails validation.
        text = (
            "Inputs: 0:Qubit\n"
            'QGate["H"](5)\n'
            "Outputs: 0:Qubit"
        )
        with pytest.raises(Exception):
            loads(text)


class TestQasmExport:
    def test_bell_pair(self):
        from repro.io import bcircuit_to_qasm

        def bell(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        qasm = bcircuit_to_qasm(build(bell, qubit, qubit)[0])
        assert qasm.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in qasm
        assert "qreg q[2];" in qasm
        assert "h q[0];" in qasm
        assert "cx q[0], q[1];" in qasm

    def test_measure_and_classical_control(self):
        from repro.io import bcircuit_to_qasm

        def circ(qc, a, b):
            qc.hadamard(a)
            bit = qc.measure(a)
            qc.qnot(b, controls=bit)
            return bit, b

        qasm = bcircuit_to_qasm(build(circ, qubit, qubit)[0])
        assert "creg c0[1];" in qasm
        assert "measure q[0] -> c0[0];" in qasm
        assert "if (c0 == 1) x q[1];" in qasm

    def test_negative_control_conjugation(self):
        from repro import neg
        from repro.io import bcircuit_to_qasm

        def circ(qc, a, b):
            qc.qnot(b, controls=neg(a))
            return a, b

        qasm = bcircuit_to_qasm(build(circ, qubit, qubit)[0])
        # The negative control is conjugated: x, cx, x on the control.
        lines = [l for l in qasm.splitlines() if l and not l.startswith(("OPENQASM", "include", "qreg"))]
        assert lines == ["x q[0];", "cx q[0], q[1];", "x q[0];"]

    def test_boxed_circuits_are_inlined(self):
        from repro.io import bcircuit_to_qasm

        def inner(qc, a):
            qc.hadamard(a)
            return a

        def outer(qc, a):
            qc.box("sub", inner, a)
            return a

        qasm = bcircuit_to_qasm(build(outer, qubit)[0])
        assert "h q[0];" in qasm

    def test_classical_logic_is_rejected(self):
        from repro.core.circuit import BCircuit, Circuit
        from repro.io import QasmExportError, bcircuit_to_qasm

        bc = BCircuit(
            Circuit(
                inputs=(),
                gates=[
                    CInit(0, False),
                    CInit(1, False),
                    CGate("and", 2, (0, 1)),
                ],
                outputs=((0, CLASSICAL), (1, CLASSICAL), (2, CLASSICAL)),
            )
        )
        with pytest.raises(QasmExportError):
            bcircuit_to_qasm(bc)

    def test_rotation_angles(self):
        from repro.io import bcircuit_to_qasm

        def circ(qc, a):
            qc.expZt(0.25, a)
            return a

        # exp(-i t Z) is rz(2t) up to global phase.
        qasm = bcircuit_to_qasm(build(circ, qubit)[0])
        assert "rz(0.5) q[0];" in qasm

    def test_inverted_rotation_negates_angle(self):
        from repro.io import bcircuit_to_qasm

        # inverted=True rotations arise from direct construction or from
        # parsing text like QGate["Rz(0.5)*"] -- the dagger must export
        # with the negated angle, not silently drop the star.
        bc = BCircuit(
            Circuit(
                inputs=((0, QUANTUM), (1, QUANTUM)),
                gates=[
                    NamedGate("Rz", targets=(0,), inverted=True, param=0.5),
                    NamedGate("exp(-i%Z)", targets=(0,), inverted=True,
                              param=0.25),
                    NamedGate("exp(-i%ZZ)", targets=(0, 1), inverted=True,
                              param=0.25),
                ],
                outputs=((0, QUANTUM), (1, QUANTUM)),
            )
        )
        qasm = bcircuit_to_qasm(bc)
        assert "rz(-0.5) q[0];" in qasm
        assert "rz(-0.5) q[1];" in qasm  # the ZZ conjugation's core
        assert qasm.count("rz(-0.5)") == 3  # Rz*, exp(-i%Z)*, exp(-i%ZZ)*


class TestWidthMemoization:
    """Satellite: stale Subroutine._width cannot survive namespace edits."""

    @staticmethod
    def _boxed() -> BCircuit:
        def inner(qc, a):
            qc.hadamard(a)
            return a

        def outer(qc, a):
            qc.box("sub", inner, a)
            return a

        return build(outer, qubit)[0]

    def test_check_reflects_in_place_body_mutation(self):
        bc = self._boxed()
        assert bc.check() == 1  # memoizes the subroutine width

        # Widen the subroutine body in place (ancilla init/term pair).
        sub_circuit = bc.namespace["sub"].circuit
        wire = max(w for w, _ in sub_circuit.inputs) + 100
        sub_circuit.gates.insert(0, Init(wire, False))
        sub_circuit.gates.append(Term(wire, False))

        # Without invalidation the stale cached width (1) would leak.
        assert bc.check() == 2

    def test_width_cache_not_part_of_equality(self):
        bc1 = self._boxed()
        bc2 = self._boxed()
        bc1.check()  # memoizes widths in bc1 only
        assert bc1.namespace["sub"] == bc2.namespace["sub"]

    def test_invalidate_width_drops_cache(self):
        bc = self._boxed()
        sub = bc.namespace["sub"]
        sub.width(bc.namespace)
        assert sub._width is not None
        sub.invalidate_width()
        assert sub._width is None


class TestGoldenQasm:
    """Pin the exact QASM text for every algorithm family.

    The fixtures under ``golden/qasm`` freeze the dialect: column
    allocation order, dialect comments, angle formatting, opaque
    declarations.  Any exporter change that rewrites them must be
    deliberate (regenerate via
    ``tests/test_qasm_roundtrip.ALGORITHMS``).
    """

    @pytest.mark.parametrize(
        "name", ["bf", "bwt", "cl", "gse", "qls", "tf", "usv"]
    )
    def test_algorithm_qasm_matches_golden(self, name):
        from test_qasm_roundtrip import ALGORITHMS

        golden = (GOLDEN_DIR / "qasm" / f"{name}.qasm").read_text()
        text = ALGORITHMS[name]().transform("binary").qasm()
        assert text == golden

    @pytest.mark.parametrize(
        "name", ["bf", "bwt", "cl", "gse", "qls", "tf", "usv"]
    )
    def test_golden_qasm_reimports(self, name):
        from repro.program import Program

        text = (GOLDEN_DIR / "qasm" / f"{name}.qasm").read_text()
        assert Program.loads_qasm(text).qasm() == text
