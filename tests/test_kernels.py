"""Randomized equivalence suite: flat kernel engine vs the legacy engine.

The flat in-place kernel engine (:mod:`repro.sim.kernels`) is pinned
against :class:`~repro.sim.state.LegacyStateVector` -- the original
moveaxis + reshape + matmul implementation, kept verbatim as the reference
-- over the full gate vocabulary: every ``_FIXED`` gate, every
parametrized gate at random angles, positive/negative/classical controls,
inverted forms, dynamic Init/Term, and mid-circuit Measure/Discard.
Final states must agree up to global phase; seeded sampling counts must
agree exactly.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro import build, get_backend, qubit
from repro.core.gates import GATE_INFO, Control, Measure, NamedGate
from repro.core.wires import CLASSICAL, QUANTUM
from repro.sim.kernels import (
    DENSE,
    DIAGONAL,
    PERMUTE,
    PHASE,
    gate_kernel,
)
from repro.sim.matrices import gate_matrix, gate_matrix_cached
from repro.sim.state import LegacyStateVector, StateVector
from repro.transform.inline import compile_flat
from strategies import (
    PARAMETRIZED as _PARAMETRIZED,
    VOCABULARY as _VOCABULARY,
    random_gates,
    superpose as _superpose,
)


def _run_both(gates, n_qubits, seed=7, bits=()):
    """Execute *gates* on both engines from |0...0>; return the pair."""
    new = StateVector(rng=np.random.default_rng(seed))
    old = LegacyStateVector(rng=np.random.default_rng(seed))
    for sim in (new, old):
        for w in range(n_qubits):
            sim.add_qubit(w, False)
        for w, v in bits:
            sim.bits[w] = v
    for gate in gates:
        new.execute(gate)
        old.execute(gate)
    return new, old


def _assert_states_match(new, old):
    """Same axes, same bits, and same amplitudes up to global phase."""
    assert new.axes == old.axes
    assert new.bits == old.bits
    a = np.asarray(new.state).ravel()
    b = np.asarray(old.state).ravel()
    assert a.shape == b.shape
    anchor = int(np.argmax(np.abs(b)))
    assert abs(b[anchor]) > 1e-9
    phase = a[anchor] / b[anchor]
    assert abs(abs(phase) - 1.0) < 1e-9
    np.testing.assert_allclose(a, phase * b, atol=1e-9)


class TestGateVocabulary:
    """Every vocabulary gate, in every form, against the legacy engine."""

    @pytest.mark.parametrize("name", _VOCABULARY)
    @pytest.mark.parametrize("inverted", [False, True])
    def test_plain_and_inverted(self, name, inverted):
        rnd = random.Random(hash((name, inverted)) & 0xFFFF)
        param = _PARAMETRIZED[name](rnd) if name in _PARAMETRIZED else None
        arity = gate_matrix_cached(name, param, inverted).shape[0].bit_length() - 1
        targets = tuple(range(arity))
        gate = NamedGate(name, targets, inverted=inverted, param=param)
        gates = _superpose(4) + [gate]
        new, old = _run_both(gates, 4)
        _assert_states_match(new, old)

    @pytest.mark.parametrize("name", _VOCABULARY)
    @pytest.mark.parametrize("positive", [True, False])
    def test_quantum_controlled(self, name, positive):
        rnd = random.Random(hash((name, positive)) & 0xFFFF)
        param = _PARAMETRIZED[name](rnd) if name in _PARAMETRIZED else None
        arity = gate_matrix_cached(name, param, False).shape[0].bit_length() - 1
        targets = tuple(range(arity))
        controls = (Control(arity, positive), Control(arity + 1, not positive))
        gate = NamedGate(name, targets, controls=controls, param=param)
        gates = _superpose(arity + 2) + [gate]
        new, old = _run_both(gates, arity + 2)
        _assert_states_match(new, old)

    @pytest.mark.parametrize("name", _VOCABULARY)
    @pytest.mark.parametrize("bit_value", [False, True])
    def test_classically_controlled(self, name, bit_value):
        rnd = random.Random(hash((name, bit_value)) & 0xFFFF)
        param = _PARAMETRIZED[name](rnd) if name in _PARAMETRIZED else None
        arity = gate_matrix_cached(name, param, False).shape[0].bit_length() - 1
        targets = tuple(range(arity))
        controls = (Control(100, True, CLASSICAL),)
        gate = NamedGate(name, targets, controls=controls, param=param)
        n = max(arity, 2)
        gates = _superpose(n) + [gate]
        new, old = _run_both(gates, n, bits=((100, bit_value),))
        _assert_states_match(new, old)

    def test_vocabulary_covers_gate_info(self):
        # Every simulatable built-in name is exercised above.
        simulatable = set(_VOCABULARY)
        skipped = set(GATE_INFO) - simulatable - {"not", "omega"}
        assert not skipped, f"vocabulary gates missing from the suite: {skipped}"


class TestKernelClassification:
    def test_diagonal_gates_classify_diagonal(self):
        for name, param in [
            ("Z", None), ("S", None), ("T", None), ("Rz", 0.7),
            ("R(2pi/%)", 3.0), ("exp(-i%Z)", 0.4), ("exp(-i%ZZ)", 0.9),
        ]:
            assert gate_kernel(name, param, False).kind == DIAGONAL
            assert gate_kernel(name, param, True).kind == DIAGONAL

    def test_permutation_gates_classify_permute(self):
        for name in ("X", "not", "Y", "iX", "swap"):
            assert gate_kernel(name, None, False).kind == PERMUTE

    def test_dense_residual(self):
        for name in ("H", "V", "E", "W"):
            assert gate_kernel(name, None, False).kind == DENSE
        assert gate_kernel("Rx", 0.5, False).kind == DENSE

    def test_phase_kernel(self):
        kernel = gate_kernel("phase", 0.25, False)
        assert kernel.kind == PHASE and kernel.arity == 0

    def test_matrix_cache_returns_shared_readonly_entries(self):
        a = gate_matrix_cached("Rz", 0.123, True)
        b = gate_matrix_cached("Rz", 0.123, True)
        assert a is b
        assert not a.flags.writeable
        assert a is gate_matrix(NamedGate("Rz", (0,), inverted=True, param=0.123))


class TestRandomizedCircuits:
    """Random circuits over the whole extended model, both engines."""

    @pytest.mark.parametrize("trial", range(12))
    def test_random_circuit_equivalence(self, trial):
        rnd = random.Random(1000 + trial)
        n = rnd.randint(3, 5)
        gates = random_gates(rnd, n)
        new, old = _run_both(gates, n, seed=55 + trial)
        _assert_states_match(new, old)


class TestSeededSampling:
    """Backend counts must match a legacy-engine resampling exactly."""

    @staticmethod
    def _legacy_counts(bc, shots, seed):
        """Reproduce the old backend's per-shot full-replay sampler."""
        from repro.backends.base import outcome_key

        rng = np.random.default_rng(seed)
        gates = compile_flat(bc).gates
        outputs = bc.circuit.outputs
        counts = {}
        for _ in range(shots):
            sim = LegacyStateVector(rng=rng)
            for wire, wtype in bc.circuit.inputs:
                if wtype == QUANTUM:
                    sim.add_qubit(wire, False)
                else:
                    sim.bits[wire] = False
            for gate in gates:
                sim.execute(gate)
            key = outcome_key(
                [
                    sim.measure_qubit(w) if t == QUANTUM else sim.bits[w]
                    for w, t in outputs
                ]
            )
            counts[key] = counts.get(key, 0) + 1
        return counts

    def test_forked_sampling_matches_legacy_replay_exactly(self):
        def stochastic(qc, a, b, c):
            qc.hadamard(a)
            qc.gate_T(b)
            qc.qnot(b, controls=a)
            qc.rotY(0.8, c)
            m = qc.measure(a)
            qc.qnot(c, controls=m)
            qc.hadamard(b)
            return m, b, c

        bc, _ = build(stochastic, qubit, qubit, qubit)
        for seed in (0, 7, 123):
            result = get_backend("statevector").run(bc, shots=48, seed=seed)
            assert not result.metadata["batched"]
            assert result.counts == self._legacy_counts(bc, 48, seed)

    def test_batched_sampling_is_seed_stable(self):
        def ghz(qc, a, b, c):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            qc.qnot(c, controls=b)
            return qc.measure((a, b, c))

        bc, _ = build(ghz, qubit, qubit, qubit)
        backend = get_backend("statevector")
        first = backend.run(bc, shots=256, seed=9)
        second = backend.run(bc, shots=256, seed=9)
        assert first.metadata["batched"]
        assert first.counts == second.counts
        assert set(first.counts) <= {"000", "111"}


class TestCompiledStream:
    def test_compile_flat_memoizes_per_circuit(self):
        def circ(qc, a, b):
            qc.hadamard(a)
            qc.qnot(b, controls=a)
            return a, b

        bc, _ = build(circ, qubit, qubit)
        first = compile_flat(bc)
        assert compile_flat(bc) is first

    def test_compile_flat_recompiles_after_mutation(self):
        def circ(qc, a):
            qc.hadamard(a)
            return a

        bc, _ = build(circ, qubit)
        first = compile_flat(bc)
        bc.circuit.gates.append(NamedGate("H", (0,)))
        second = compile_flat(bc)
        assert second is not first
        assert len(second.gates) == len(first.gates) + 1

    def test_compile_flat_recompiles_after_count_preserving_mutation(self):
        # Replacing a stored gate without changing any gate count must
        # still invalidate the memoized stream (the snapshot compares the
        # gate objects, not their count).
        def circ(qc, a):
            qc.hadamard(a)
            return a

        bc, _ = build(circ, qubit)
        first = compile_flat(bc)
        bc.circuit.gates[0] = NamedGate("X", (0,))
        second = compile_flat(bc)
        assert second is not first
        assert second.gates[0].name == "X"

    def test_prefix_split_at_first_measurement(self):
        def circ(qc, a, b):
            qc.hadamard(a)
            qc.gate_T(b)
            m = qc.measure(a)
            qc.qnot(b, controls=m)
            return m, b

        bc, _ = build(circ, qubit, qubit)
        compiled = compile_flat(bc)
        assert compiled.prefix_len == 2
        assert isinstance(compiled.gates[compiled.prefix_len], Measure)

    def test_program_compiled_is_cached(self):
        from repro import Program

        def circ(qc, a):
            qc.hadamard(a)
            return a

        prog = Program.capture(circ, qubit)
        assert prog.compiled() is prog.compiled()
        prog.run(shots=8, seed=0)


class TestFlatEngineInternals:
    def test_copy_forks_amplitudes_and_shares_rng(self):
        sim = StateVector(rng=np.random.default_rng(1))
        for w in range(3):
            sim.add_qubit(w, False)
        for g in _superpose(3):
            sim.execute(g)
        fork = sim.copy()
        assert fork.rng is sim.rng
        fork.execute(NamedGate("X", (0,)))
        assert not np.allclose(fork.state, sim.state)

    def test_apply_unitary_matches_legacy(self):
        matrix = gate_matrix_cached("W", None, False)
        gates = _superpose(4)
        new, old = _run_both(gates, 4)
        controls = (Control(0, True), Control(3, False))
        new.apply_unitary(matrix, (1, 2), controls)
        old.apply_unitary(matrix, (1, 2), controls)
        _assert_states_match(new, old)

    def test_legacy_path_unavailable_gate_still_raises(self):
        from repro.core.errors import SimulationError

        sim = StateVector()
        sim.add_qubit(0, False)
        with pytest.raises(SimulationError):
            sim.execute(NamedGate("mystery-gate", (0,)))
