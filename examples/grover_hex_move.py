"""Boolean Formula: find blue's winning Hex move with Grover search.

The lifted position-evaluation oracle drives amplitude amplification over
the empty cells of an endgame position -- "computes a winning strategy
for the game of Hex" (paper Section 1).

Run:  python examples/grover_hex_move.py
"""

from repro import Program
from repro.backends import marginal_counts
from repro.core.qdata import qdata_leaves
from repro.algorithms.bf import (
    blue_wins,
    count_winning_assignments,
    winning_move_search,
)


def render(board, rows, cols):
    symbols = {True: "B", False: "r", None: "?"}
    return "\n".join(
        "  " + " " * r + " ".join(
            symbols[board[r * cols + c]] for c in range(cols)
        )
        for r in range(rows)
    )


def main() -> None:
    rows, cols = 2, 3
    partial = [True, None, False, False, None, True]
    print("endgame position (B blue, r red, ? empty):")
    print(render(partial, rows, cols))
    wins = count_winning_assignments(rows, cols, partial)
    empties = sum(v is None for v in partial)
    print(f"\nwinning assignments: {wins} of {2 ** empties}")

    def circuit(qc):
        register, _ = winning_move_search(
            qc, rows, cols, partial, iterations=1
        )
        return register

    # One Program, one backend run: 30 shots of the Grover register.
    program = Program.capture(circuit, name="grover-hex")
    wires = [q.wire_id for q in qdata_leaves(program.outputs)]
    result = program.run(shots=30, seed=0)
    outcomes = marginal_counts(result, program.bcircuit, wires)

    slots = [i for i, v in enumerate(partial) if v is None]

    def completion(value: int) -> list:
        board = list(partial)
        for k, slot in enumerate(slots):
            board[slot] = bool((value >> (len(slots) - 1 - k)) & 1)
        return board

    hits = sum(
        count
        for value, count in outcomes.items()
        if blue_wins(completion(value), rows, cols)
    )
    print(f"Grover search hit a winning completion {hits}/30 times")
    print(f"(random guessing: ~{30 * wins // 2 ** empties})")
    best = max(outcomes, key=lambda v: outcomes[v])
    print("\nmost frequent completion:")
    print(render(completion(best), rows, cols))


if __name__ == "__main__":
    main()
