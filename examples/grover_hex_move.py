"""Boolean Formula: find blue's winning Hex move with Grover search.

The lifted position-evaluation oracle drives amplitude amplification over
the empty cells of an endgame position -- "computes a winning strategy
for the game of Hex" (paper Section 1).

Run:  python examples/grover_hex_move.py
"""

from collections import Counter

from repro.sim import run_generic
from repro.algorithms.bf import (
    blue_wins,
    count_winning_assignments,
    winning_move_search,
)


def render(board, rows, cols):
    symbols = {True: "B", False: "r", None: "?"}
    return "\n".join(
        "  " + " " * r + " ".join(
            symbols[board[r * cols + c]] for c in range(cols)
        )
        for r in range(rows)
    )


def main() -> None:
    rows, cols = 2, 3
    partial = [True, None, False, False, None, True]
    print("endgame position (B blue, r red, ? empty):")
    print(render(partial, rows, cols))
    wins = count_winning_assignments(rows, cols, partial)
    empties = sum(v is None for v in partial)
    print(f"\nwinning assignments: {wins} of {2 ** empties}")

    def circuit(qc):
        register, _ = winning_move_search(
            qc, rows, cols, partial, iterations=1
        )
        return register

    outcomes = Counter()
    hits = 0
    for seed in range(30):
        out = run_generic(circuit, seed=seed)
        board = list(partial)
        slots = [i for i, v in enumerate(partial) if v is None]
        for slot, value in zip(slots, out):
            board[slot] = value
        outcomes[tuple(out)] += 1
        hits += blue_wins(board, rows, cols)
    print(f"Grover search hit a winning completion {hits}/30 times")
    print(f"(random guessing: ~{30 * wins // 2 ** empties})")
    best = outcomes.most_common(1)[0][0]
    board = list(partial)
    slots = [i for i, v in enumerate(partial) if v is None]
    for slot, value in zip(slots, best):
        board[slot] = value
    print("\nmost frequent completion:")
    print(render(board, rows, cols))


if __name__ == "__main__":
    main()
