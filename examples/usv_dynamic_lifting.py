"""Unique Shortest Vector: dynamic lifting in anger (paper Section 3.5).

Each quantum round measures *part* of its registers mid-circuit; the
classical controller reads the outcome through dynamic lifting and
generates the rest of the circuit on the fly.  Rounds accumulate GF(2)
constraints until the planted short vector's coefficient parity is
pinned down.

Run:  python examples/usv_dynamic_lifting.py
"""

import numpy as np

from repro.algorithms.usv import shortest_vector, solve_usv


def main() -> None:
    for seed in (0, 1, 2):
        report = solve_usv(dimension=3, seed=seed)
        basis = report["basis"]
        print(f"instance (seed {seed}):")
        for row in basis:
            print("   ", row)
        print(f"  planted coefficient parity: {report['planted_parity']}")
        print(f"  quantum rounds used:        {report['rounds']}")
        print(f"  recovered parity:           {report['recovered_parity']}")
        print(f"  recovered short vector:     {report['vector']}"
              f" (|v| = {np.linalg.norm(report['vector']):.3f})")
        classical, norm = report["classical_vector"], report["classical_norm"]
        print(f"  classical exhaustive search: {classical} (|v| = {norm:.3f})")
        print()


if __name__ == "__main__":
    main()
