"""Ground State Estimation for molecular hydrogen (paper's GSE).

Phase-estimates the Trotterized evolution of the two-qubit H2 Hamiltonian
and compares against exact diagonalization.

Run:  python examples/h2_ground_state.py
"""

from repro.algorithms.gse import (
    H2_HAMILTONIAN,
    estimate_ground_energy,
    exact_ground_energy,
)


def main() -> None:
    print("H2 molecular Hamiltonian (2-qubit reduction):")
    for coeff, pauli in H2_HAMILTONIAN:
        label = " ".join(f"{p}{q}" for q, p in sorted(pauli.items())) or "I"
        print(f"  {coeff:+.4f} * {label}")

    exact = exact_ground_energy(H2_HAMILTONIAN, 2)
    print(f"\nexact ground energy:      {exact:+.4f} Hartree")

    for precision in (4, 5, 6):
        estimate = estimate_ground_energy(
            precision=precision, t=0.8, trotter_steps=2, samples=7
        )
        print(f"GSE at {precision} phase bits:     {estimate:+.4f} Hartree"
              f"   (error {abs(estimate - exact):.4f})")


if __name__ == "__main__":
    main()
