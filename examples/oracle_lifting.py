"""Automatic oracle generation (paper Section 4.6).

Lifts three classical functions into quantum oracles: the paper's parity
example, the Hex flood-fill winner check, and a fixed-point sin(x) --
then makes them reversible and checks them against the classical code.

Run:  python examples/oracle_lifting.py
"""

import math

from repro import Program, qubit
from repro.datatypes import FPRealM, fpreal_shape
from repro.lifting import (
    bool_xor,
    build_circuit,
    classical_to_reversible,
    unpack,
)
from repro.sim import run_classical_generic
from repro.algorithms.bf import blue_wins, make_hex_winner_template
from repro.algorithms.qls import make_sin_template


# The paper's example: parity of a list of booleans.
@build_circuit
def f(as_):
    result = False
    for h in as_:
        result = bool_xor(h, result)
    return result


def main() -> None:
    print("== f still runs classically ==")
    print("  f([True, False, True]) =", f([True, False, True]))

    print("\n== unpack(template_f) on 4 qubits (paper's figure) ==")
    template_f = unpack(f)
    Program.capture(
        lambda qc, qs: (qs, template_f(qc, qs)), [qubit] * 4,
        name="parity", on_extra="ignore",
    ).print()

    print("\n== classical_to_reversible(unpack(template_f)) ==")
    rev = classical_to_reversible(template_f)
    Program.capture(
        lambda qc, qs, y: rev(qc, qs, y), [qubit] * 4, qubit,
        name="parity-reversible",
    ).print()

    print("\n== the Hex winner oracle (Section 4.6.1) ==")
    hex_template = make_hex_winner_template(3, 3)
    hex_rev = classical_to_reversible(unpack(hex_template))
    board = [True, True, False, False, True, True, True, False, True]
    cells, wins = run_classical_generic(
        lambda qc, b, t: hex_rev(qc, b, t), board, False
    )
    print(f"  board {''.join('B' if b else '.' for b in board)}:"
          f" circuit says blue wins = {wins},"
          f" flood fill says {blue_wins(board, 3, 3)}")

    print("\n== lifted fixed-point sin(x) (the QLS oracle) ==")
    sin_template = make_sin_template(terms=6)
    sin_rev = classical_to_reversible(unpack(sin_template))
    ib, fb = 3, 13
    for x in (0.0, 0.5, 1.0, -0.5):
        _, y = run_classical_generic(
            lambda qc, a, b: sin_rev(qc, a, b),
            FPRealM(x, ib, fb), FPRealM(0.0, ib, fb),
        )
        print(f"  sin({x:+.2f}) = {float(y):+.5f}"
              f"   (math.sin: {math.sin(x):+.5f})")
    counts = Program.capture(
        lambda qc, a: (a, unpack(sin_template)(qc, a)),
        fpreal_shape(ib, fb), name="sin-oracle", on_extra="ignore",
    ).total_gates()
    print(f"  sin oracle at {ib}+{fb} bits: {counts:,} gates"
          " (3,273,010 at 32+32 in the paper)")


if __name__ == "__main__":
    main()
