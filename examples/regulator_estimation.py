"""Class Number: estimate the regulator of a real quadratic field.

Classical number theory (continued fractions, Pell's equation) provides
the ground truth; quantum period finding over the gridded pseudo-periodic
function recovers it.

Run:  python examples/regulator_estimation.py
"""

from repro.algorithms.cl import (
    continued_fraction_sqrt,
    estimate_regulator,
    pell_fundamental_solution,
    regulator,
)


def main() -> None:
    for d in (7, 13, 19):
        x, y = pell_fundamental_solution(d)
        exact = regulator(d)
        estimate = estimate_regulator(d, width=6, samples=12, seed=1)
        cf = continued_fraction_sqrt(d)
        print(f"Q(sqrt({d})):")
        print(f"  sqrt({d}) = {cf}")
        print(f"  Pell fundamental solution: ({x}, {y})")
        print(f"  classical regulator ln(x + y sqrt(D)) = {exact:.5f}")
        print(f"  quantum period-finding estimate       = {estimate:.5f}")
        print()


if __name__ == "__main__":
    main()
