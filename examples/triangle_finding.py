"""Triangle Finding end to end (paper Section 5).

1. Validates the oracle's modular arithmetic (the Simulate test suite).
2. Prints the o4_POW17 gate count at the paper's parameters (l=4).
3. Counts the *complete* algorithm at moderate scale -- billions of gates
   represented in a few thousand stored gates, counted in seconds.

Run:  python examples/triangle_finding.py
"""

import time

from repro import TOFFOLI
from repro.algorithms.tf.main import part_program
from repro.algorithms.tf.simulate import run_all


def main() -> None:
    print("== oracle test suite (l=4, n=3) ==")
    for name, passed in run_all(l=4, n=3).items():
        print(f"  {name:<12} {'ok' if passed else 'FAILED'}")

    print("\n== o4_POW17 gate count at l=4, n=3, r=2 "
          "(paper: 9632 gates, 71 qubits) ==")
    pow17 = part_program("pow17", 4, 3, 2, "orthodox").transform(TOFFOLI)
    print(pow17.gatecount())

    print("\n== full algorithm at l=15, n=8, r=4 ==")
    start = time.time()
    program = part_program("full", 15, 8, 4, "orthodox",
                           grover_iterations=256, walk_steps=4096)
    total = program.total_gates()
    elapsed = time.time() - start
    print(f"  total gates: {total:,}")
    print(f"  stored gates (hierarchical representation): {len(program):,}")
    print(f"  qubits: {program.width()}")
    print(f"  wall time: {elapsed:.1f}s")
    print("  (the paper's l=31, n=15, r=6 instance counts 30+ trillion;")
    print("   run `pytest benchmarks/test_t3_full_tf_gatecount.py` for it)")


if __name__ == "__main__":
    main()
