"""The Section 6 comparison: QCL vs Quipper on the Binary Welded Tree.

Generates the same BWT circuit three ways -- a QCL-style imperative
compiler, the hand-coded ("orthodox") Quipper oracle, and the
automatically lifted ("template") oracle -- and prints the paper's table.

Run:  python examples/bwt_comparison.py
"""

from repro import TOFFOLI, aggregate_gate_count, decompose_generic
from repro import total_logical_gates
from repro.algorithms.bwt import bwt_circuit
from repro.baselines import qcl_bwt_circuit

PAPER = {
    "Init": (58, 313, 777),
    "Not": (746, 8, 0),
    "CNot1": (9012, 472, 344),
    "CNot2": (7548, 768, 1760),
    "e^-itZ": (4, 4, 4),
    "W": (48, 48, 48),
    "Term": (0, 307, 771),
    "Meas": (0, 6, 6),
    "Total": (17358, 1300, 2156),
    "Qubits": (58, 26, 108),
}


def row(bc):
    bc = decompose_generic(TOFFOLI, bc)
    counts = aggregate_gate_count(bc)

    def grab(pred):
        return sum(v for k, v in counts.items() if pred(k))

    return {
        "Init": grab(lambda k: k[0].startswith("Init")),
        "Not": grab(lambda k: k[0] == "Not" and k[1] + k[2] == 0),
        "CNot1": grab(lambda k: k[0] == "Not" and k[1] + k[2] == 1),
        "CNot2": grab(lambda k: k[0] == "Not" and k[1] + k[2] == 2),
        "e^-itZ": grab(lambda k: k[0].startswith("exp")),
        "W": grab(lambda k: k[0] == "W"),
        "Term": grab(lambda k: k[0].startswith("Term")),
        "Meas": grab(lambda k: k[0] == "Meas"),
        "Total": total_logical_gates(counts),
        "Qubits": bc.check(),
    }


def main() -> None:
    n, s, t = 4, 1, 0.1
    print(f"generating BWT circuits (n={n}, s={s}, t={t}) ...")
    qcl = row(qcl_bwt_circuit(n, s, t))
    orthodox = row(bwt_circuit(n, s, t, "orthodox"))
    template = row(bwt_circuit(n, s, t, "template"))

    print(f"\n{'':>8} {'QCL direct':>22} {'Quipper orthodox':>22} "
          f"{'Quipper template':>22}")
    print(f"{'':>8} {'paper / measured':>22} {'paper / measured':>22} "
          f"{'paper / measured':>22}")
    for metric, paper in PAPER.items():
        cells = [
            f"{paper[0]} / {qcl[metric]}",
            f"{paper[1]} / {orthodox[metric]}",
            f"{paper[2]} / {template[metric]}",
        ]
        print(f"{metric:>8} {cells[0]:>22} {cells[1]:>22} {cells[2]:>22}")

    print("\nconclusions (paper Section 6):")
    print(f"  QCL / orthodox total gates: {qcl['Total'] / orthodox['Total']:.1f}x"
          f"  (paper: {17358 / 1300:.1f}x)")
    print(f"  template uses the most qubits ({template['Qubits']}) but fewer"
          f" gates than QCL ({template['Total']} < {qcl['Total']})")


if __name__ == "__main__":
    main()
