"""Quickstart: the paper's Section 4.4 examples, in Python.

Builds the paper's ``mycirc`` family, prints circuits, applies block
structure, reverses a subroutine mid-circuit, decomposes to the binary
gate base, and runs a Bell-pair simulation.

Run:  python examples/quickstart.py
"""

from repro import (
    BINARY,
    build,
    decompose_generic,
    get_backend,
    qubit,
    run_generic,
)
from repro.io import dumps, loads
from repro.output import format_bcircuit, format_gatecount


# -- a quantum function: gates applied one at a time (Section 4.4.1) -----

def mycirc(qc, a, b):
    qc.hadamard(a)
    qc.hadamard(b)
    qc.controlled_not(a, b)
    return a, b


# -- block structure: an entire block under a control (Section 4.4.2) ----

def mycirc2(qc, a, b, c):
    mycirc(qc, a, b)
    with qc.controls(c):
        mycirc(qc, a, b)
        mycirc(qc, b, a)
    mycirc(qc, a, c)
    return a, b, c


# -- an ancilla scoped to a block ----------------------------------------

def mycirc3(qc, a, b, c):
    with qc.ancilla() as x:
        qc.qnot(x, controls=(a, b))
        qc.hadamard(c, controls=x)
        qc.qnot(x, controls=(a, b))
    return a, b, c


# -- whole-circuit operators: reverse a subroutine mid-circuit -----------

def timestep(qc, a, b, c):
    mycirc(qc, a, b)
    qc.qnot(c, controls=(a, b))
    qc.reverse_endo(mycirc, a, b)
    return a, b, c


def main() -> None:
    print("== mycirc ==")
    bc, _ = build(mycirc, qubit, qubit)
    print(format_bcircuit(bc))

    print("\n== mycirc2 (with_controls) ==")
    bc2, _ = build(mycirc2, qubit, qubit, qubit)
    print(format_bcircuit(bc2))

    print("\n== mycirc3 (with_ancilla) ==")
    bc3, _ = build(mycirc3, qubit, qubit, qubit)
    print(format_bcircuit(bc3))

    print("\n== timestep (mid-circuit reversal) ==")
    bc4, _ = build(timestep, qubit, qubit, qubit)
    print(format_bcircuit(bc4))

    print("\n== timestep2 = decompose_generic(Binary, timestep) ==")
    bc5 = decompose_generic(BINARY, bc4)
    print(format_bcircuit(bc5))
    print()
    print(format_gatecount(bc5))

    print("\n== sampling a Bell pair through the backend registry ==")

    def bell(qc, a, b):
        qc.hadamard(a)
        qc.qnot(b, controls=a)
        return qc.measure((a, b))

    result = run_generic(bell, qubit, qubit, shots=1024, seed=7)
    print("  1024 shots on", result.backend, "->", result.counts)

    clifford = get_backend("clifford")
    bell_bc, _ = build(bell, qubit, qubit)
    print("  64 shots on clifford   ->",
          clifford.run(bell_bc, shots=64, seed=7).counts)
    print("  static resources       ->",
          get_backend("resources").run(bell_bc).resources["total_gates"],
          "gates")

    print("\n== round-tripping a circuit through Quipper-ASCII text ==")
    text = dumps(bc4)
    print(f"  serialized timestep: {len(text)} chars,",
          "round-trip equal:", loads(text) == bc4)


if __name__ == "__main__":
    main()
