"""Quickstart: the paper's Section 4.4 examples, in Python.

Builds the paper's ``mycirc`` family as fluent ``Program`` pipelines:
prints circuits, applies block structure, reverses a subroutine
mid-circuit, decomposes to the binary gate base in one fused transformer
pass, and runs a Bell-pair simulation -- one definition per circuit,
every consumer a method.

Run:  python examples/quickstart.py
"""

from repro import BINARY, Program, main, qubit


# -- a quantum function: gates applied one at a time (Section 4.4.1) -----

def mycirc(qc, a, b):
    qc.hadamard(a)
    qc.hadamard(b)
    qc.controlled_not(a, b)
    return a, b


# -- block structure: an entire block under a control (Section 4.4.2) ----

def mycirc2(qc, a, b, c):
    mycirc(qc, a, b)
    with qc.controls(c):
        mycirc(qc, a, b)
        mycirc(qc, b, a)
    mycirc(qc, a, c)
    return a, b, c


# -- an ancilla scoped to a block ----------------------------------------

def mycirc3(qc, a, b, c):
    with qc.ancilla() as x:
        qc.qnot(x, controls=(a, b))
        qc.hadamard(c, controls=x)
        qc.qnot(x, controls=(a, b))
    return a, b, c


# -- whole-circuit operators: reverse a subroutine mid-circuit -----------

def timestep(qc, a, b, c):
    mycirc(qc, a, b)
    qc.qnot(c, controls=(a, b))
    qc.reverse_endo(mycirc, a, b)
    return a, b, c


# -- the program entry point: the decorated function IS a Program --------

@main(qubit, qubit)
def bell(qc, a, b):
    qc.hadamard(a)
    qc.qnot(b, controls=a)
    return qc.measure((a, b))


def demo() -> None:
    print("== mycirc ==")
    Program.capture(mycirc, qubit, qubit).print()

    print("\n== mycirc2 (with_controls) ==")
    Program.capture(mycirc2, qubit, qubit, qubit).print()

    print("\n== mycirc3 (with_ancilla) ==")
    Program.capture(mycirc3, qubit, qubit, qubit).print()

    print("\n== timestep (mid-circuit reversal) ==")
    step = Program.capture(timestep, qubit, qubit, qubit)
    step.print()

    print("\n== timestep2 = timestep.transform('binary'), one fused pass ==")
    step2 = step.transform(BINARY)
    step2.print()
    print()
    print(step2.gatecount())

    print("\n== one Bell-pair Program, every backend a method call ==")
    result = bell.run(shots=1024, seed=7)
    print("  1024 shots on", result.backend, "->", result.counts)
    print("  64 shots on clifford   ->",
          bell.run("clifford", shots=64, seed=7).counts)
    print("  static resources       ->",
          bell.resources()["total_gates"], "gates")

    print("\n== round-tripping a Program through Quipper-ASCII text ==")
    text = step.dumps()
    print(f"  serialized timestep: {len(text)} chars,",
          "round-trip equal:",
          Program.loads(text).bcircuit == step.bcircuit)


if __name__ == "__main__":
    demo()
