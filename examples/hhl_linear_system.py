"""Quantum Linear Systems: solve A x = b with HHL.

Run:  python examples/hhl_linear_system.py
"""

import numpy as np

from repro.algorithms.qls import (
    DEMO_B,
    DEMO_MATRIX,
    classical_solution,
    solve_demo,
)


def main() -> None:
    print("A =")
    print(DEMO_MATRIX)
    print("b =", DEMO_B)

    measured, expected = solve_demo()
    x = classical_solution(DEMO_MATRIX, DEMO_B)
    print("\nclassical solution (normalized):", np.round(x, 4))
    print("classical |x_i|^2:              ", np.round(expected, 4))
    print("HHL measurement probabilities:  ", np.round(measured, 4))

    b2 = np.array([0.6, 0.8])
    measured2, expected2 = solve_demo(b=b2)
    print(f"\nwith b = {b2}:")
    print("classical |x_i|^2:              ", np.round(expected2, 4))
    print("HHL measurement probabilities:  ", np.round(measured2, 4))


if __name__ == "__main__":
    main()
